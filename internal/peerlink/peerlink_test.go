package peerlink_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/peerlink"
	"cosched/internal/proto"
	"cosched/internal/sim"
)

// fakeConn is a scriptable Transport: fail decides each round trip's fate.
type fakeConn struct {
	id   int
	fail func(c *fakeConn, method string) error

	mu     sync.Mutex
	calls  int
	closed bool
}

func (c *fakeConn) roundTrip(method string) error {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	if c.fail != nil {
		return c.fail(c, method)
	}
	return nil
}

func (c *fakeConn) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func (c *fakeConn) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *fakeConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

func (c *fakeConn) Ping() (string, error) { return "fake", c.roundTrip(proto.MethodPing) }
func (c *fakeConn) PeerName() string      { return "fake" }

func (c *fakeConn) GetMateJob(id job.ID) (bool, error) {
	return true, c.roundTrip(proto.MethodGetMateJob)
}

func (c *fakeConn) GetMateStatus(id job.ID) (cosched.MateStatus, error) {
	if err := c.roundTrip(proto.MethodGetMateStatus); err != nil {
		return cosched.StatusUnknown, err
	}
	return cosched.StatusQueuing, nil
}

func (c *fakeConn) CanStartMate(id job.ID) (bool, error) {
	return true, c.roundTrip(proto.MethodCanStartMate)
}

func (c *fakeConn) TryStartMate(id job.ID) (bool, error) {
	return true, c.roundTrip(proto.MethodTryStartMate)
}

func (c *fakeConn) StartMate(id job.ID) error { return c.roundTrip(proto.MethodStartMate) }

func (c *fakeConn) TryStartMateAt(id job.ID, at sim.Time) (bool, error) {
	return true, c.roundTrip(proto.MethodTryStartMate)
}

func (c *fakeConn) StartMateAt(id job.ID, at sim.Time) error {
	return c.roundTrip(proto.MethodStartMate)
}

func (c *fakeConn) ReconcileMates(from string, views []cosched.MateView) ([]cosched.MateView, error) {
	if err := c.roundTrip(proto.MethodReconcile); err != nil {
		return nil, err
	}
	return nil, nil
}

// harness provides a fake clock and a scriptable dialer.
type harness struct {
	mu      sync.Mutex
	clock   time.Time
	dialErr error // non-nil: dials fail with this
	onConn  func(c *fakeConn, method string) error
	dials   int
	conns   []*fakeConn
}

func newHarness() *harness {
	return &harness{clock: time.Unix(1_000_000, 0)}
}

func (h *harness) now() time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.clock
}

func (h *harness) advance(d time.Duration) {
	h.mu.Lock()
	h.clock = h.clock.Add(d)
	h.mu.Unlock()
}

func (h *harness) setDialErr(err error) {
	h.mu.Lock()
	h.dialErr = err
	h.mu.Unlock()
}

func (h *harness) dial(addr string, dialTimeout, callTimeout time.Duration) (peerlink.Transport, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dials++
	if h.dialErr != nil {
		return nil, &proto.TransportError{Stage: proto.StageDial, Err: h.dialErr}
	}
	c := &fakeConn{id: h.dials, fail: h.onConn}
	h.conns = append(h.conns, c)
	return c, nil
}

func (h *harness) dialCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dials
}

func (h *harness) lastConn() *fakeConn {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.conns) == 0 {
		return nil
	}
	return h.conns[len(h.conns)-1]
}

func newTestLink(h *harness, mutate func(*peerlink.Config)) *peerlink.Link {
	cfg := peerlink.Config{
		Name:          "mate",
		Addr:          "test:0",
		DialTimeout:   time.Second,
		CallTimeout:   2 * time.Second,
		FailThreshold: 3,
		Cooldown:      5 * time.Second,
		BackoffBase:   100 * time.Millisecond,
		BackoffMax:    time.Second,
		Seed:          42,
		Dial:          h.dial,
		Now:           h.now,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return peerlink.New(cfg)
}

func TestBreakerOpensAfterConsecutiveDialFailures(t *testing.T) {
	h := newHarness()
	h.setDialErr(errors.New("connection refused"))
	l := newTestLink(h, nil)

	// Three dial attempts (spaced past the backoff gates) trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := l.GetMateStatus(1); err == nil {
			t.Fatalf("call %d against dead peer succeeded", i)
		}
		h.advance(2 * time.Second) // beyond any backoff gate
	}
	if l.State() != peerlink.Open {
		t.Fatalf("state = %v after %d failures, want open", l.State(), 3)
	}
	dials := h.dialCount()
	if dials != 3 {
		t.Fatalf("dials = %d, want 3", dials)
	}

	// While open (the advance above consumed 2s of the 5s cooldown), calls
	// fail instantly with ErrCircuitOpen and never touch the dialer.
	for i := 0; i < 10; i++ {
		_, err := l.GetMateStatus(1)
		if !errors.Is(err, peerlink.ErrCircuitOpen) {
			t.Fatalf("open-breaker error = %v, want ErrCircuitOpen", err)
		}
	}
	if h.dialCount() != dials {
		t.Fatalf("open breaker dialed: %d -> %d", dials, h.dialCount())
	}
	snap := l.Snapshot()
	if snap.State != "open" || snap.Trips != 1 || snap.FastFails < 10 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestBackoffGatesRedialsBetweenFailures(t *testing.T) {
	h := newHarness()
	h.setDialErr(errors.New("refused"))
	l := newTestLink(h, func(c *peerlink.Config) { c.FailThreshold = 100 }) // keep breaker out of the way

	if _, err := l.GetMateStatus(1); err == nil {
		t.Fatal("dead dial succeeded")
	}
	// Immediately after a failed dial the gate is in effect: the next call
	// fails fast with ErrDialBackoff, without a dial.
	dials := h.dialCount()
	_, err := l.GetMateStatus(1)
	if !errors.Is(err, peerlink.ErrDialBackoff) {
		t.Fatalf("gated error = %v, want ErrDialBackoff", err)
	}
	if h.dialCount() != dials {
		t.Fatal("gated call dialed anyway")
	}
	// Past the gate (max backoff for one failure is BackoffBase), a real
	// attempt happens again.
	h.advance(150 * time.Millisecond)
	if _, err := l.GetMateStatus(1); errors.Is(err, peerlink.ErrDialBackoff) {
		t.Fatalf("expired gate still failing fast: %v", err)
	}
	if h.dialCount() != dials+1 {
		t.Fatalf("dials = %d, want %d", h.dialCount(), dials+1)
	}
}

func TestHalfOpenProbeClosesOnSuccess(t *testing.T) {
	h := newHarness()
	h.setDialErr(errors.New("refused"))
	var transitions []string
	l := newTestLink(h, func(c *peerlink.Config) {
		c.OnStateChange = func(name string, from, to peerlink.State, cause error) {
			transitions = append(transitions, fmt.Sprintf("%s->%s", from, to))
		}
	})
	for i := 0; i < 3; i++ {
		l.GetMateStatus(1)
		h.advance(time.Second)
	}
	if l.State() != peerlink.Open {
		t.Fatalf("state = %v, want open", l.State())
	}

	// Heal the peer; the breaker stays open until the cooldown elapses.
	h.setDialErr(nil)
	if _, err := l.GetMateStatus(1); !errors.Is(err, peerlink.ErrCircuitOpen) {
		t.Fatalf("pre-cooldown error = %v, want ErrCircuitOpen", err)
	}
	h.advance(10 * time.Second)
	st, err := l.GetMateStatus(1)
	if err != nil || st != cosched.StatusQueuing {
		t.Fatalf("probe call = %v, %v", st, err)
	}
	if l.State() != peerlink.Closed {
		t.Fatalf("state after successful probe = %v, want closed", l.State())
	}
	snap := l.Snapshot()
	if !snap.Connected || snap.ConsecutiveFailures != 0 {
		t.Fatalf("snapshot after recovery = %+v", snap)
	}
	// Subsequent calls reuse the connection.
	dials := h.dialCount()
	for i := 0; i < 5; i++ {
		if _, err := l.GetMateStatus(1); err != nil {
			t.Fatal(err)
		}
	}
	if h.dialCount() != dials {
		t.Fatal("healthy link redialed")
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(transitions) != 3 || transitions[0] != want[0] || transitions[1] != want[1] || transitions[2] != want[2] {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
}

func TestHalfOpenProbeFailureReopens(t *testing.T) {
	h := newHarness()
	h.setDialErr(errors.New("refused"))
	l := newTestLink(h, nil)
	for i := 0; i < 3; i++ {
		l.GetMateStatus(1)
		h.advance(time.Second)
	}
	h.advance(10 * time.Second) // past cooldown; peer still dead
	if _, err := l.GetMateStatus(1); errors.Is(err, peerlink.ErrCircuitOpen) {
		t.Fatalf("probe was fast-failed: %v", err)
	}
	if l.State() != peerlink.Open {
		t.Fatalf("state after failed probe = %v, want open", l.State())
	}
	if snap := l.Snapshot(); snap.Trips != 2 {
		t.Fatalf("trips = %d, want 2", snap.Trips)
	}
	// And the fresh cooldown fast-fails again.
	if _, err := l.GetMateStatus(1); !errors.Is(err, peerlink.ErrCircuitOpen) {
		t.Fatalf("post-reopen error = %v, want ErrCircuitOpen", err)
	}
}

// TestRemoteErrorKeepsConnection pins the satellite-bug fix: the old
// lazyPeer.drop tore down the cached client on *any* error, including a
// remote manager answering "no such job" — which forced a full redial on
// the next scheduling iteration. Remote application errors must leave the
// connection (and the breaker) untouched.
func TestRemoteErrorKeepsConnection(t *testing.T) {
	h := newHarness()
	h.onConn = func(c *fakeConn, method string) error {
		if method == proto.MethodStartMate {
			return &proto.RemoteError{Method: method, Msg: "job 9 is not holding"}
		}
		return nil
	}
	l := newTestLink(h, nil)
	if _, err := l.GetMateStatus(1); err != nil {
		t.Fatal(err)
	}
	conn := h.lastConn()
	for i := 0; i < 20; i++ { // far past FailThreshold
		err := l.StartMate(9)
		if !proto.IsRemote(err) {
			t.Fatalf("StartMate error = %v, want RemoteError", err)
		}
	}
	if conn.Closed() {
		t.Fatal("remote application error tore down a healthy connection")
	}
	if h.dialCount() != 1 {
		t.Fatalf("dials = %d, want 1 (no redial on remote errors)", h.dialCount())
	}
	if l.State() != peerlink.Closed {
		t.Fatalf("state = %v, want closed (remote errors never trip the breaker)", l.State())
	}
	snap := l.Snapshot()
	if snap.RemoteErrors != 20 || snap.TransportErrors != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestWriteStageFailureRetriesOnFreshConn(t *testing.T) {
	h := newHarness()
	h.onConn = func(c *fakeConn, method string) error {
		if c.id == 1 {
			return &proto.TransportError{Method: method, Stage: proto.StageWrite,
				Err: errors.New("use of closed network connection")}
		}
		return nil
	}
	l := newTestLink(h, nil)
	// First call: conn 1 dies at write stage, the retry dials conn 2 and
	// succeeds — the caller never sees the blip. TryStartMate is safe here
	// too: a write-stage failure provably never reached the peer.
	ok, err := l.TryStartMate(5)
	if err != nil || !ok {
		t.Fatalf("TryStartMate through a dropped conn = %v, %v", ok, err)
	}
	if h.dialCount() != 2 {
		t.Fatalf("dials = %d, want 2 (original + retry)", h.dialCount())
	}
	if !h.conns[0].Closed() {
		t.Fatal("failed conn not closed")
	}
	snap := l.Snapshot()
	if snap.Retries != 1 || snap.Successes != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if l.State() != peerlink.Closed {
		t.Fatalf("state = %v", l.State())
	}
}

func TestReadStageFailureNotRetriedForNonIdempotentCalls(t *testing.T) {
	h := newHarness()
	h.onConn = func(c *fakeConn, method string) error {
		if c.id == 1 {
			return &proto.TransportError{Method: method, Stage: proto.StageRead,
				Err: errors.New("i/o timeout")}
		}
		return nil
	}
	l := newTestLink(h, nil)
	// TryStartMate's request may have reached the peer: no retry.
	if _, err := l.TryStartMate(5); err == nil {
		t.Fatal("ambiguous TryStartMate was retried to success")
	}
	if h.dialCount() != 1 {
		t.Fatalf("dials = %d, want 1 (no retry dial)", h.dialCount())
	}
	if snap := l.Snapshot(); snap.Retries != 0 {
		t.Fatalf("retries = %d, want 0", snap.Retries)
	}

	// An idempotent query IS retried through the same ambiguity: on a fresh
	// link, conn 1 read-fails, the retry dials conn 2 and succeeds.
	h2 := newHarness()
	h2.onConn = h.onConn
	l2 := newTestLink(h2, func(c *peerlink.Config) { c.Dial = h2.dial; c.Now = h2.now })
	st, err := l2.GetMateStatus(7)
	if err != nil || st != cosched.StatusQueuing {
		t.Fatalf("GetMateStatus = %v, %v (want retried success)", st, err)
	}
	if h2.dialCount() != 2 {
		t.Fatalf("dials = %d, want 2", h2.dialCount())
	}
	if snap := l2.Snapshot(); snap.Retries != 1 {
		t.Fatalf("retries = %d, want 1", snap.Retries)
	}
}

func TestBackoffScheduleDeterministicAndBounded(t *testing.T) {
	h := newHarness()
	a := newTestLink(h, nil)
	b := newTestLink(h, nil)
	c := newTestLink(h, func(cfg *peerlink.Config) { cfg.Seed = 99 })
	base, max := 100*time.Millisecond, time.Second
	var diverged bool
	for k := 1; k <= 12; k++ {
		da, db, dc := a.BackoffForTest(k), b.BackoffForTest(k), c.BackoffForTest(k)
		if da != db {
			t.Fatalf("same seed diverged at k=%d: %v vs %v", k, da, db)
		}
		if da != dc {
			diverged = true
		}
		full := base << (k - 1)
		if full > max || full <= 0 {
			full = max
		}
		if da < full/2 || da >= full {
			t.Fatalf("backoff(k=%d) = %v outside [%v, %v)", k, da, full/2, full)
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

// TestOpenBreakerFailFastLatency is the acceptance bound: with the peer
// down and the breaker open, a coscheduling query returns in well under a
// millisecond — the scheduler absorbs "status unknown" without stalling.
func TestOpenBreakerFailFastLatency(t *testing.T) {
	h := newHarness()
	h.setDialErr(errors.New("refused"))
	l := newTestLink(h, nil)
	for i := 0; i < 3; i++ {
		l.GetMateStatus(1)
		h.advance(time.Second)
	}
	if l.State() != peerlink.Open {
		t.Fatalf("state = %v, want open", l.State())
	}
	const n = 1000
	//simlint:allow R2 measuring real fail-fast latency of the open breaker; no simulation time involved
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := l.GetMateStatus(1); !errors.Is(err, peerlink.ErrCircuitOpen) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	//simlint:allow R2 measuring real fail-fast latency of the open breaker; no simulation time involved
	elapsed := time.Since(start)
	if avg := elapsed / n; avg > time.Millisecond {
		t.Fatalf("open-breaker call averaged %v, want <1ms", avg)
	}
}

func BenchmarkOpenBreakerFailFast(b *testing.B) {
	h := newHarness()
	h.setDialErr(errors.New("refused"))
	l := newTestLink(h, nil)
	for i := 0; i < 3; i++ {
		l.GetMateStatus(1)
		h.advance(time.Second)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.GetMateStatus(1)
	}
}

func TestBreakConnForcesTransparentRedial(t *testing.T) {
	h := newHarness()
	l := newTestLink(h, nil)
	if _, err := l.GetMateStatus(1); err != nil {
		t.Fatal(err)
	}
	first := h.lastConn()
	l.BreakConn()
	if !first.Closed() {
		t.Fatal("BreakConn left the connection open")
	}
	// The next call simply dials a fresh connection; no failure recorded.
	if _, err := l.GetMateStatus(1); err != nil {
		t.Fatalf("call after BreakConn: %v", err)
	}
	snap := l.Snapshot()
	if snap.BreakConns != 1 || snap.TransportErrors != 0 || snap.Dials != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestConcurrentCallsAndSnapshots(t *testing.T) {
	h := newHarness()
	l := newTestLink(h, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					l.GetMateStatus(job.ID(i))
				case 1:
					l.GetMateJob(job.ID(i))
				case 2:
					l.Snapshot()
				case 3:
					if g == 0 && i%40 == 3 {
						l.BreakConn()
					} else {
						l.CanStartMate(job.ID(i))
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if l.State() != peerlink.Closed {
		t.Fatalf("state = %v after healthy concurrent traffic", l.State())
	}
}

func TestPeerNameIsConfigured(t *testing.T) {
	h := newHarness()
	h.setDialErr(errors.New("refused"))
	l := newTestLink(h, nil)
	// PeerName never touches the network — even with the peer down.
	if l.PeerName() != "mate" {
		t.Fatalf("PeerName = %q", l.PeerName())
	}
}

// TestBackoffSurvivesFlappyDialUntilMinHealthy pins the satellite-bug fix:
// the old acquire path reset dialFails to zero the moment a dial succeeded,
// so a flapping peer (accepts the TCP connect, dies on the first call)
// collapsed the exponential schedule back to BackoffBase on every flap and
// the link hammered it at the minimum interval forever. The backoff
// exponent must survive a successful dial until the connection has stayed
// healthy for MinHealthy.
func TestBackoffSurvivesFlappyDialUntilMinHealthy(t *testing.T) {
	h := newHarness()
	h.setDialErr(errors.New("connection refused"))
	l := newTestLink(h, func(cfg *peerlink.Config) {
		cfg.FailThreshold = 100 // keep the breaker out of the way
		// MinHealthy left at its 1s default: that is the behavior under test.
	})

	// Accumulate three dial failures; the exponent is now 3.
	for i := 0; i < 3; i++ {
		if _, err := l.GetMateStatus(1); err == nil {
			t.Fatalf("call %d against dead peer succeeded", i)
		}
		h.advance(2 * time.Second) // beyond any backoff gate
	}
	if h.dialCount() != 3 {
		t.Fatalf("dials = %d, want 3", h.dialCount())
	}

	// The peer flaps: the dial succeeds, then the connection dies on the
	// very first call. (The write-stage failure is retried once on a fresh
	// conn, which also dies — two dials, both short-lived.)
	h.setDialErr(nil)
	h.onConn = func(c *fakeConn, method string) error {
		return &proto.TransportError{Method: method, Stage: proto.StageWrite,
			Err: errors.New("connection reset by peer")}
	}
	if _, err := l.GetMateStatus(1); err == nil {
		t.Fatal("call on flapping peer succeeded")
	}
	if h.dialCount() != 5 {
		t.Fatalf("dials = %d, want 5 (flap + one retry on a fresh conn)", h.dialCount())
	}

	// Peer back to refusing outright. Neither flap connection lived
	// MinHealthy, so this failure must continue the old schedule at
	// exponent 4 — a gate of at least base*2^3/2 = 400ms even at minimum
	// jitter — not restart it at backoff(1) < 100ms as the old code did.
	h.setDialErr(errors.New("connection refused"))
	h.onConn = nil
	if _, err := l.GetMateStatus(1); err == nil {
		t.Fatal("call against dead peer succeeded")
	}
	h.advance(150 * time.Millisecond) // past backoff(1), far short of backoff(4)
	dials := h.dialCount()
	if _, err := l.GetMateStatus(1); !errors.Is(err, peerlink.ErrDialBackoff) {
		t.Fatalf("error after flap = %v, want ErrDialBackoff (exponent must survive the flap)", err)
	}
	if h.dialCount() != dials {
		t.Fatal("gated call dialed anyway")
	}

	// The gate still expires: one more failure at the continued exponent.
	h.advance(time.Second)
	if _, err := l.GetMateStatus(1); err == nil {
		t.Fatal("call against dead peer succeeded")
	}
	if h.dialCount() != dials+1 {
		t.Fatalf("dials = %d, want %d (gate should have expired)", h.dialCount(), dials+1)
	}

	// Now the peer genuinely recovers. The first successful dial does NOT
	// clear the window; only MinHealthy of proven uptime does.
	h.setDialErr(nil)
	h.advance(2 * time.Second) // past the accumulated gate
	if _, err := l.GetMateStatus(1); err != nil {
		t.Fatalf("call on recovered peer failed: %v", err)
	}
	h.advance(1500 * time.Millisecond) // > MinHealthy of uptime
	if _, err := l.GetMateStatus(1); err != nil {
		t.Fatalf("call on recovered peer failed: %v", err)
	}

	// With the window reset, a fresh outage restarts the schedule at
	// backoff(1) < 100ms: a failure followed by a 150ms wait must redial.
	l.BreakConn()
	h.setDialErr(errors.New("connection refused"))
	if _, err := l.GetMateStatus(1); err == nil {
		t.Fatal("call against dead peer succeeded")
	}
	h.advance(150 * time.Millisecond)
	dials = h.dialCount()
	if _, err := l.GetMateStatus(1); err == nil {
		t.Fatal("call against dead peer succeeded")
	}
	if h.dialCount() != dials+1 {
		t.Fatalf("dials = %d, want %d (reset window should gate at backoff(1) < 150ms)", h.dialCount(), dials+1)
	}
}

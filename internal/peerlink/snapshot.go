package peerlink

// Snapshot is a point-in-time view of a Link's health and counters,
// served by the live status endpoint (internal/live/status.go) and
// summarized at daemon shutdown. JSON-friendly by construction.
type Snapshot struct {
	Name      string `json:"name"`
	Addr      string `json:"addr,omitempty"`
	State     string `json:"state"`
	Connected bool   `json:"connected"`

	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`

	Calls           int `json:"calls"`
	Successes       int `json:"successes"`
	RemoteErrors    int `json:"remote_errors,omitempty"`
	TransportErrors int `json:"transport_errors,omitempty"`
	FastFails       int `json:"fast_fails,omitempty"`
	Retries         int `json:"retries,omitempty"`
	Dials           int `json:"dials,omitempty"`
	DialErrors      int `json:"dial_errors,omitempty"`
	Trips           int `json:"trips,omitempty"`
	BreakConns      int `json:"break_conns,omitempty"`

	LastError string `json:"last_error,omitempty"`
}

// Snapshot captures the link's current state and counters.
func (l *Link) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Snapshot{
		Name:                l.cfg.Name,
		Addr:                l.cfg.Addr,
		State:               l.state.String(),
		Connected:           l.client != nil,
		ConsecutiveFailures: l.consecFails,
		Calls:               l.calls,
		Successes:           l.successes,
		RemoteErrors:        l.remoteErrs,
		TransportErrors:     l.transportErrs,
		FastFails:           l.fastFails,
		Retries:             l.retries,
		Dials:               l.dials,
		DialErrors:          l.dialErrs,
		Trips:               l.trips,
		BreakConns:          l.breakConns,
		LastError:           l.lastErr,
	}
}

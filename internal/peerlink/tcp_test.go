package peerlink_test

import (
	"errors"
	"testing"
	"time"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/peerlink"
	"cosched/internal/proto"
)

// tcpBackend is a minimal healthy Peer for the integration test.
type tcpBackend struct{}

func (tcpBackend) PeerName() string                { return "remote" }
func (tcpBackend) GetMateJob(job.ID) (bool, error) { return true, nil }
func (tcpBackend) GetMateStatus(job.ID) (cosched.MateStatus, error) {
	return cosched.StatusQueuing, nil
}
func (tcpBackend) CanStartMate(job.ID) (bool, error) { return true, nil }
func (tcpBackend) TryStartMate(job.ID) (bool, error) { return true, nil }
func (tcpBackend) StartMate(job.ID) error            { return nil }

// TestLinkRecoversAcrossServerRestartOverTCP drives a Link through the
// full outage lifecycle against a real proto.Server: healthy traffic, the
// server dies (breaker trips), fast-fails while down, then the server
// restarts on the same address and the half-open probe recovers the link.
func TestLinkRecoversAcrossServerRestartOverTCP(t *testing.T) {
	srv := proto.NewServer(tcpBackend{}, nil, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	l := peerlink.New(peerlink.Config{
		Name:          "remote",
		Addr:          addr.String(),
		DialTimeout:   time.Second,
		CallTimeout:   time.Second,
		FailThreshold: 2,
		Cooldown:      30 * time.Millisecond,
		BackoffBase:   time.Millisecond,
		BackoffMax:    5 * time.Millisecond,
		Seed:          7,
	})
	defer l.Close()

	if st, err := l.GetMateStatus(1); err != nil || st != cosched.StatusQueuing {
		t.Fatalf("healthy call = %v, %v", st, err)
	}

	// Kill the server. The established connection dies and redials hit a
	// closed port; within a few calls the breaker must trip.
	srv.Close()
	deadlineLoop(t, "breaker did not open after server death", func() bool {
		l.GetMateStatus(1)
		return l.State() == peerlink.Open
	})
	if _, err := l.GetMateStatus(1); err == nil {
		t.Fatal("call against dead server succeeded")
	}

	// Restart on the same address; the cooldown elapses and a probe closes
	// the breaker again.
	srv2 := proto.NewServer(tcpBackend{}, nil, nil)
	if _, err := srv2.Listen(addr.String()); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	deadlineLoop(t, "link did not recover after server restart", func() bool {
		l.Probe()
		return l.State() == peerlink.Closed
	})
	if st, err := l.GetMateStatus(1); err != nil || st != cosched.StatusQueuing {
		t.Fatalf("post-recovery call = %v, %v", st, err)
	}
	snap := l.Snapshot()
	if snap.Trips == 0 || !snap.Connected {
		t.Fatalf("snapshot after recovery = %+v", snap)
	}
}

// TestLinkDialErrorIsTransport verifies the wire dialer classifies a
// refused connection as a dial-stage transport error, so callers can apply
// the Algorithm 1 "status unknown" rule uniformly.
func TestLinkDialErrorIsTransport(t *testing.T) {
	srv := proto.NewServer(tcpBackend{}, nil, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // free the port: dials now fail fast

	l := peerlink.New(peerlink.Config{
		Name:        "remote",
		Addr:        addr.String(),
		DialTimeout: 500 * time.Millisecond,
		BackoffBase: time.Millisecond,
	})
	defer l.Close()
	_, err = l.GetMateStatus(1)
	if err == nil {
		t.Fatal("dial against closed port succeeded")
	}
	var te *proto.TransportError
	if !errors.As(err, &te) || te.Stage != proto.StageDial {
		t.Fatalf("err = %v, want dial-stage TransportError", err)
	}
	if proto.IsRemote(err) {
		t.Fatal("dial error classified as remote")
	}
}

// deadlineLoop polls cond for up to ~5s of real time.
func deadlineLoop(t *testing.T, msg string, cond func() bool) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if cond() {
			return
		}
		//simlint:allow R2 pacing a real TCP outage/recovery loop; no simulation clock in this test
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

package policy

import (
	"math"

	"cosched/internal/job"
	"cosched/internal/sim"
)

// UsageObserver is implemented by stateful policies that account completed
// work (the resource manager calls it from the completion path).
type UsageObserver interface {
	ObserveCompletion(j *job.Job, now sim.Time)
}

// FairShare layers exponentially-decayed per-user usage accounting on a
// base policy, as production schedulers do: a user's accumulated
// node-seconds (halving every HalfLife) scales their jobs' priority down,
// so heavy users cannot starve light ones during contention. The base
// score is divided by (1 + usage/shareScale), keeping the time-growth
// property that yield-yield convergence relies on (§IV-D2): a job's score
// still increases without bound as it waits.
type FairShare struct {
	// Base supplies the underlying score; nil means WFP.
	Base Policy
	// HalfLife is the usage decay period; ≤ 0 means 7 days.
	HalfLife sim.Duration
	// ShareScale is the node-second usage at which a user's priority is
	// halved; ≤ 0 means 100k node-seconds.
	ShareScale float64

	usage map[int]*decayed
}

// decayed is an exponentially decaying accumulator.
type decayed struct {
	value float64
	at    sim.Time
}

// NewFairShare builds a fair-share policy over base.
func NewFairShare(base Policy, halfLife sim.Duration) *FairShare {
	return &FairShare{Base: base, HalfLife: halfLife, usage: make(map[int]*decayed)}
}

// Name implements Policy.
func (f *FairShare) Name() string { return "fairshare" }

func (f *FairShare) halfLife() float64 {
	if f.HalfLife > 0 {
		return float64(f.HalfLife)
	}
	return float64(7 * sim.Day)
}

func (f *FairShare) shareScale() float64 {
	if f.ShareScale > 0 {
		return f.ShareScale
	}
	return 100_000
}

func (f *FairShare) base() Policy {
	if f.Base != nil {
		return f.Base
	}
	return WFP{}
}

// usageAt returns the user's decayed usage at time now.
func (f *FairShare) usageAt(user int, now sim.Time) float64 {
	d, ok := f.usage[user]
	if !ok {
		return 0
	}
	dt := float64(now - d.at)
	if dt <= 0 {
		return d.value
	}
	return d.value * math.Exp2(-dt/f.halfLife())
}

// Score implements Policy: the base score scaled by the user's share
// factor. The factor is strictly positive, so relative ordering within one
// user's jobs is preserved and every job's score still grows with wait.
func (f *FairShare) Score(j *job.Job, now sim.Time) float64 {
	base := f.base().Score(j, now)
	factor := 1.0 / (1.0 + f.usageAt(j.User, now)/f.shareScale())
	return base * factor
}

// ObserveCompletion implements UsageObserver: charge the job's
// node-seconds to its user.
func (f *FairShare) ObserveCompletion(j *job.Job, now sim.Time) {
	if f.usage == nil {
		f.usage = make(map[int]*decayed)
	}
	d, ok := f.usage[j.User]
	if !ok {
		f.usage[j.User] = &decayed{value: float64(j.NodeSeconds()), at: now}
		return
	}
	d.value = f.usageAt(j.User, now) + float64(j.NodeSeconds())
	d.at = now
}

// Usage returns the user's current decayed usage (for tests and
// introspection).
func (f *FairShare) Usage(user int, now sim.Time) float64 { return f.usageAt(user, now) }

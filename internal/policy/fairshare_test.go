package policy

import (
	"math"
	"testing"

	"cosched/internal/job"
	"cosched/internal/sim"
)

func fsjob(id job.ID, user int, nodes int, submit sim.Time) *job.Job {
	j := job.New(id, nodes, submit, sim.Hour, sim.Hour)
	j.User = user
	return j
}

func TestFairShareDeprioritizesHeavyUser(t *testing.T) {
	fs := NewFairShare(WFP{}, 7*sim.Day)
	// User 1 burned 500k node-seconds; user 2 none.
	burned := fsjob(99, 1, 500, 0)
	burned.StartTime = 0
	fs.ObserveCompletion(burned, 1000)

	now := sim.Time(10_000)
	heavy := fsjob(1, 1, 64, 0)
	light := fsjob(2, 2, 64, 0)
	ordered := Order(fs, []*job.Job{heavy, light}, now, nil)
	if ordered[0].ID != 2 {
		t.Fatal("heavy user's job not deprioritized")
	}
	if fs.Score(heavy, now) >= fs.Score(light, now) {
		t.Fatal("scores not ordered by share")
	}
}

func TestFairShareDecays(t *testing.T) {
	fs := NewFairShare(WFP{}, sim.Day)
	j := fsjob(1, 7, 100, 0)
	fs.ObserveCompletion(j, 0)
	u0 := fs.Usage(7, 0)
	uHalf := fs.Usage(7, sim.Day)
	uTwo := fs.Usage(7, 2*sim.Day)
	if math.Abs(uHalf-u0/2) > u0*0.01 {
		t.Fatalf("usage after one half-life = %g, want %g", uHalf, u0/2)
	}
	if math.Abs(uTwo-u0/4) > u0*0.01 {
		t.Fatalf("usage after two half-lives = %g, want %g", uTwo, u0/4)
	}
}

func TestFairShareAccumulates(t *testing.T) {
	fs := NewFairShare(WFP{}, 7*sim.Day)
	j := fsjob(1, 3, 10, 0) // 10 nodes × 3600 s
	fs.ObserveCompletion(j, 0)
	fs.ObserveCompletion(j, 0)
	if got := fs.Usage(3, 0); got != 72000 {
		t.Fatalf("usage = %g, want 72000", got)
	}
	if fs.Usage(999, 0) != 0 {
		t.Fatal("unknown user has usage")
	}
}

func TestFairShareScoreStillGrowsWithWait(t *testing.T) {
	// §IV-D2 requires unbounded priority growth for yield convergence.
	fs := NewFairShare(WFP{}, 7*sim.Day)
	heavy := fsjob(99, 1, 1000, 0)
	fs.ObserveCompletion(heavy, 0)
	j := fsjob(1, 1, 64, 0)
	prev := -1.0
	for _, now := range []sim.Time{600, sim.Hour, sim.Day, 10 * sim.Day} {
		s := fs.Score(j, now)
		if s <= prev {
			t.Fatalf("fair-share score not growing: %g after %g", s, prev)
		}
		prev = s
	}
}

func TestFairShareByName(t *testing.T) {
	p, ok := ByName("fairshare")
	if !ok {
		t.Fatal("fairshare not registered")
	}
	if p.Name() != "fairshare" {
		t.Fatalf("name = %s", p.Name())
	}
	// Fresh instance per call: usage must not leak between lookups.
	fs := p.(*FairShare)
	fs.ObserveCompletion(fsjob(1, 1, 100, 0), 0)
	p2, _ := ByName("fairshare")
	if p2.(*FairShare).Usage(1, 0) != 0 {
		t.Fatal("ByName shares state across instances")
	}
}

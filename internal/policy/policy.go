// Package policy implements the queue-ordering policies used by the
// resource manager: FCFS and WFP (the utility function Cobalt ran on
// Intrepid, described in Tang et al., Cluster'09), plus short-job-first and
// largest-first for comparison.
//
// A policy assigns every queued job a score; the scheduler starts jobs in
// descending score order (ties broken by submit time, then ID, so ordering
// is total and deterministic). Policies also accept a per-job priority
// boost, which the coscheduling layer uses to escalate repeatedly-yielded
// jobs and to demote a holding job to the back of one scheduling iteration
// when it temporarily releases its nodes (the deadlock breaker).
package policy

import (
	"math"

	"cosched/internal/job"
	"cosched/internal/sim"
)

// Policy scores queued jobs; larger scores start first.
type Policy interface {
	// Name returns the policy's configuration name ("fcfs", "wfp", ...).
	Name() string
	// Score returns the ordering key for j at virtual time now.
	Score(j *job.Job, now sim.Time) float64
}

// Boost supplies an additive score adjustment per job, layered on top of
// the base policy. The resource manager implements it to handle yield
// escalation and release-demotion without the policy knowing about
// coscheduling.
type Boost func(j *job.Job) float64

// TimeInvariant marks policies whose Score depends only on the job's
// immutable request fields — not on `now` and not on mutable scheduler
// state. For such policies the canonical queue order is a property of the
// queue's membership alone, so the resource manager's incremental core can
// keep the queue sorted across iterations instead of re-sorting it on every
// one. FCFS, SJF, and LargestFirst qualify; WFP (wait-time dependent) and
// FairShare (usage-stateful) do not and must not implement this interface.
type TimeInvariant interface {
	// TimeInvariant reports that Score(j, t1) == Score(j, t2) for all t1,
	// t2 while j's request fields are unchanged.
	TimeInvariant() bool
}

// IsTimeInvariant reports whether p declares a time-invariant score.
func IsTimeInvariant(p Policy) bool {
	ti, ok := p.(TimeInvariant)
	return ok && ti.TimeInvariant()
}

// Precedes is the canonical scheduling order shared by Orderer.Order and
// the resource manager's incrementally sorted queue: descending score,
// ties by earlier submit time, then smaller ID. Both consumers MUST use
// this exact comparator — the incremental core's determinism guarantee is
// that binary-search insertion and a full sort agree on every permutation.
func Precedes(sa float64, a *job.Job, sb float64, b *job.Job) bool {
	//simlint:allow R5 canonical comparator must be exact and total; an epsilon tie would break strict weak ordering
	if sa != sb {
		return sa > sb
	}
	if a.SubmitTime != b.SubmitTime {
		return a.SubmitTime < b.SubmitTime
	}
	return a.ID < b.ID
}

// scored pairs a job with its precomputed ordering key so the sort
// comparator stays allocation- and hash-free.
type scored struct {
	j *job.Job
	s float64
}

// Orderer sorts queues for scheduling while reusing its internal score and
// output buffers across calls. Each resource manager owns one (they are
// not safe for concurrent use), which removes the two per-iteration
// allocations Order pays — significant once the experiment harness runs
// many simulations at once and every engine sorts thousand-entry queues
// each scheduling iteration.
//
// The slice returned by Order is valid only until the next Order call on
// the same Orderer; callers that retain it must copy.
type Orderer struct {
	tmp []scored
	out []*job.Job
}

// Order returns the queue sorted for scheduling: descending score (+boost),
// ties by earlier submit time, then smaller ID. The input slice is not
// modified. The result is backed by the Orderer's reusable buffer.
func (o *Orderer) Order(p Policy, q []*job.Job, now sim.Time, boost Boost) []*job.Job {
	if cap(o.tmp) < len(q) {
		o.tmp = make([]scored, len(q))
		o.out = make([]*job.Job, len(q))
	}
	tmp := o.tmp[:len(q)]
	for i, j := range q {
		s := p.Score(j, now)
		if boost != nil {
			s += boost(j)
		}
		tmp[i] = scored{j, s}
	}
	// The comparator is a strict total order (ID breaks all ties), so an
	// unstable sort is safe and the unique sorted permutation makes the
	// result independent of the sort algorithm. sortScored is hand-rolled
	// with the comparison inlined: this sort runs on every scheduling
	// iteration of every simulation, and the per-comparison function call
	// of the generic sorts (sort.Slice's reflection swapper first, then
	// slices.SortFunc's closure dispatch) was the sweep's largest single
	// CPU sink.
	sortScored(tmp)
	out := o.out[:len(q)]
	for i := range tmp {
		out[i] = tmp[i].j
		tmp[i].j = nil // drop the reference so reused buffers don't pin jobs
	}
	return out
}

// scoredLess orders scored entries by the canonical Precedes comparator.
//
//simlint:hotpath
func scoredLess(a, b *scored) bool { return Precedes(a.s, a.j, b.s, b.j) }

// sortScored sorts by scoredLess: median-of-three quicksort with an
// insertion-sort cutoff, iterating into the larger partition so stack
// depth stays logarithmic. Precedes is a strict total order (no two
// entries compare equal), which rules out the quadratic equal-keys
// pathology and makes the output the unique sorted permutation.
//
//simlint:hotpath
func sortScored(s []scored) {
	for {
		n := len(s)
		if n < 16 {
			for i := 1; i < n; i++ {
				for j := i; j > 0 && scoredLess(&s[j], &s[j-1]); j-- {
					s[j], s[j-1] = s[j-1], s[j]
				}
			}
			return
		}
		// Median-of-three pivot: order s[0], s[mid], s[n-1] in place.
		mid := n / 2
		if scoredLess(&s[mid], &s[0]) {
			s[mid], s[0] = s[0], s[mid]
		}
		if scoredLess(&s[n-1], &s[mid]) {
			s[n-1], s[mid] = s[mid], s[n-1]
			if scoredLess(&s[mid], &s[0]) {
				s[mid], s[0] = s[0], s[mid]
			}
		}
		pivot := s[mid]
		// Hoare partition around the pivot value.
		i, j := 0, n-1
		for {
			for scoredLess(&s[i], &pivot) {
				i++
			}
			for scoredLess(&pivot, &s[j]) {
				j--
			}
			if i >= j {
				break
			}
			s[i], s[j] = s[j], s[i]
			i++
			j--
		}
		// Recurse into the smaller half, loop on the larger.
		if j+1 <= n-(j+1) {
			sortScored(s[:j+1])
			s = s[j+1:]
		} else {
			sortScored(s[j+1:])
			s = s[:j+1]
		}
	}
}

// Order is the allocating convenience form of Orderer.Order: the returned
// slice is freshly allocated and safe to retain.
func Order(p Policy, q []*job.Job, now sim.Time, boost Boost) []*job.Job {
	var o Orderer
	return o.Order(p, q, now, boost)
}

// FCFS is first-come-first-served: score is the negated submit time, so the
// earliest submission wins.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Score implements Policy.
func (FCFS) Score(j *job.Job, _ sim.Time) float64 { return -float64(j.SubmitTime) }

// TimeInvariant implements TimeInvariant.
func (FCFS) TimeInvariant() bool { return true }

// WFP is the "wait-fair-priority" utility Cobalt used on Intrepid:
//
//	score = (queued_time / walltime)^3 × nodes
//
// It favors jobs that have waited long relative to their requested length
// (so priority grows with time — the property §IV-D2 of the paper relies on
// for yield-yield convergence) and favors large jobs, countering the bias
// backfilling gives small ones.
type WFP struct{}

// Name implements Policy.
func (WFP) Name() string { return "wfp" }

// Score implements Policy.
func (WFP) Score(j *job.Job, now sim.Time) float64 {
	wait := float64(now - j.SubmitTime)
	if wait < 0 {
		wait = 0
	}
	wall := float64(j.Walltime)
	if wall < 1 {
		wall = 1
	}
	r := wait / wall
	return r * r * r * float64(j.Nodes)
}

// SJF is shortest-job-first by requested walltime (classic starvation-prone
// throughput policy, included for ablations).
type SJF struct{}

// Name implements Policy.
func (SJF) Name() string { return "sjf" }

// Score implements Policy.
func (SJF) Score(j *job.Job, _ sim.Time) float64 { return -float64(j.Walltime) }

// TimeInvariant implements TimeInvariant.
func (SJF) TimeInvariant() bool { return true }

// LargestFirst orders by node count descending, breaking ties FCFS via
// Order's tie rules.
type LargestFirst struct{}

// Name implements Policy.
func (LargestFirst) Name() string { return "largest" }

// Score implements Policy.
func (LargestFirst) Score(j *job.Job, _ sim.Time) float64 { return float64(j.Nodes) }

// TimeInvariant implements TimeInvariant.
func (LargestFirst) TimeInvariant() bool { return true }

// ByName returns the named policy, defaulting to WFP for "" and returning
// ok=false for unknown names.
func ByName(name string) (Policy, bool) {
	switch name {
	case "", "wfp":
		return WFP{}, true
	case "fcfs":
		return FCFS{}, true
	case "sjf":
		return SJF{}, true
	case "largest":
		return LargestFirst{}, true
	case "fairshare":
		// Stateful: each call returns a fresh accumulator, so one
		// instance never leaks usage across domains or runs.
		return NewFairShare(WFP{}, 0), true
	default:
		return nil, false
	}
}

// DemotionBoost is a boost value large enough (in magnitude) to push any job
// behind every other queued job for one iteration, regardless of base score.
// WFP scores are bounded by (wait/1)^3 × nodes; with month-long waits
// (~2.6e6 s) and 40960 nodes that is ~7e19 < 1e30.
const DemotionBoost = -1e30

// EscalationBoost symmetrically guarantees front-of-queue placement.
const EscalationBoost = 1e30

// yieldBoostUnit is the additive score increment applied per recorded
// yield when per-yield priority boosting is enabled (paper §IV-E2's
// "increase the priority of the job after it yields each time").
const yieldBoostUnit = 1e12

// YieldBoost returns the additive boost for a job that has yielded n times
// with per-yield boosting enabled. It grows linearly, so repeated yielders
// climb the queue without immediately leapfrogging demoted/escalated bands.
func YieldBoost(n int) float64 {
	if n <= 0 {
		return 0
	}
	return math.Min(float64(n)*yieldBoostUnit, EscalationBoost/1e6)
}

package policy

import (
	"testing"
	"testing/quick"

	"cosched/internal/job"
	"cosched/internal/sim"
)

func mkjob(id job.ID, nodes int, submit sim.Time, wall sim.Duration) *job.Job {
	return job.New(id, nodes, submit, wall, wall)
}

func TestFCFSOrder(t *testing.T) {
	q := []*job.Job{
		mkjob(1, 4, 300, 600),
		mkjob(2, 4, 100, 600),
		mkjob(3, 4, 200, 600),
	}
	got := Order(FCFS{}, q, 1000, nil)
	want := []job.ID{2, 3, 1}
	for i, j := range got {
		if j.ID != want[i] {
			t.Fatalf("order = %v, want %v", ids(got), want)
		}
	}
}

func TestWFPFavorsLongWaitRelativeToWalltime(t *testing.T) {
	// Same size; the job that has waited longer relative to its walltime
	// must come first.
	a := mkjob(1, 64, 0, 10*sim.Hour)   // waited 1h of a 10h request
	b := mkjob(2, 64, 0, 30*sim.Minute) // waited 1h of a 30m request
	got := Order(WFP{}, []*job.Job{a, b}, 1*sim.Hour, nil)
	if got[0].ID != 2 {
		t.Fatalf("WFP put %v first, want job 2 (relative wait 2.0 vs 0.1)", got[0].ID)
	}
}

func TestWFPFavorsLargeJobs(t *testing.T) {
	a := mkjob(1, 512, 0, sim.Hour)
	b := mkjob(2, 8192, 0, sim.Hour)
	got := Order(WFP{}, []*job.Job{a, b}, 30*sim.Minute, nil)
	if got[0].ID != 2 {
		t.Fatal("WFP must favor the larger job at equal relative wait")
	}
}

func TestWFPScoreGrowsWithTime(t *testing.T) {
	j := mkjob(1, 64, 0, sim.Hour)
	w := WFP{}
	prev := -1.0
	for _, now := range []sim.Time{0, 600, 3600, 7200, 86400} {
		s := w.Score(j, now)
		if s < prev {
			t.Fatalf("WFP score decreased over time: %g after %g", s, prev)
		}
		prev = s
	}
}

func TestWFPNegativeWaitClamped(t *testing.T) {
	j := mkjob(1, 64, 1000, sim.Hour)
	if s := (WFP{}).Score(j, 500); s != 0 {
		t.Fatalf("score before submit = %g, want 0", s)
	}
}

func TestOrderTieBreaksBySubmitThenID(t *testing.T) {
	q := []*job.Job{
		mkjob(5, 4, 100, 600),
		mkjob(2, 4, 100, 600),
		mkjob(9, 4, 50, 600),
	}
	// FCFS gives jobs 5 and 2 identical scores (same submit).
	got := Order(FCFS{}, q, 1000, nil)
	want := []job.ID{9, 2, 5}
	for i := range want {
		if got[i].ID != want[i] {
			t.Fatalf("order = %v, want %v", ids(got), want)
		}
	}
}

func TestOrderDoesNotMutateInput(t *testing.T) {
	q := []*job.Job{mkjob(1, 4, 300, 600), mkjob(2, 4, 100, 600)}
	Order(FCFS{}, q, 1000, nil)
	if q[0].ID != 1 || q[1].ID != 2 {
		t.Fatal("Order mutated the input slice")
	}
}

func TestBoostDemotion(t *testing.T) {
	q := []*job.Job{
		mkjob(1, 40960, 0, sim.Minute), // huge WFP score
		mkjob(2, 1, 900, sim.Hour),
	}
	demote := func(j *job.Job) float64 {
		if j.ID == 1 {
			return DemotionBoost
		}
		return 0
	}
	got := Order(WFP{}, q, 30*sim.Day, demote)
	if got[len(got)-1].ID != 1 {
		t.Fatal("demoted job not last")
	}
}

func TestBoostEscalation(t *testing.T) {
	q := []*job.Job{
		mkjob(1, 40960, 0, sim.Minute),
		mkjob(2, 1, 900, sim.Hour),
	}
	esc := func(j *job.Job) float64 {
		if j.ID == 2 {
			return EscalationBoost
		}
		return 0
	}
	got := Order(WFP{}, q, 30*sim.Day, esc)
	if got[0].ID != 2 {
		t.Fatal("escalated job not first")
	}
}

func TestYieldBoostMonotone(t *testing.T) {
	prev := -1.0
	for n := 0; n <= 100; n++ {
		b := YieldBoost(n)
		if b < prev {
			t.Fatalf("YieldBoost(%d) = %g < previous %g", n, b, prev)
		}
		prev = b
	}
	if YieldBoost(5) <= 0 {
		t.Fatal("YieldBoost(5) must be positive")
	}
	if YieldBoost(1000000) >= EscalationBoost {
		t.Fatal("YieldBoost must stay below EscalationBoost")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", "wfp", "fcfs", "sjf", "largest"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) found")
	}
}

func TestSJFAndLargest(t *testing.T) {
	q := []*job.Job{
		mkjob(1, 100, 0, 2*sim.Hour),
		mkjob(2, 10, 0, sim.Hour),
	}
	if got := Order(SJF{}, q, 10, nil); got[0].ID != 2 {
		t.Fatal("SJF must put the shorter job first")
	}
	if got := Order(LargestFirst{}, q, 10, nil); got[0].ID != 1 {
		t.Fatal("LargestFirst must put the bigger job first")
	}
}

// Property: Order returns a permutation of its input for every policy.
func TestOrderPermutationProperty(t *testing.T) {
	pols := []Policy{FCFS{}, WFP{}, SJF{}, LargestFirst{}}
	f := func(sizes []uint8, now uint32) bool {
		var q []*job.Job
		for i, s := range sizes {
			q = append(q, mkjob(job.ID(i+1), int(s)+1, sim.Time(s)*7, sim.Duration(s+1)*60))
		}
		for _, p := range pols {
			got := Order(p, q, sim.Time(now), nil)
			if len(got) != len(q) {
				return false
			}
			seen := make(map[job.ID]bool)
			for _, j := range got {
				if seen[j.ID] {
					return false
				}
				seen[j.ID] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIsTimeInvariant(t *testing.T) {
	cases := []struct {
		p    Policy
		want bool
	}{
		{FCFS{}, true},
		{SJF{}, true},
		{LargestFirst{}, true},
		{WFP{}, false},
		{NewFairShare(WFP{}, 0), false},
	}
	for _, c := range cases {
		if got := IsTimeInvariant(c.p); got != c.want {
			t.Errorf("IsTimeInvariant(%s) = %v, want %v", c.p.Name(), got, c.want)
		}
	}
}

// The marker must be truthful: invariant policies really do score
// identically at every instant.
func TestTimeInvariantScoresDoNotDependOnNow(t *testing.T) {
	j := mkjob(3, 128, 500, 2*sim.Hour)
	for _, p := range []Policy{FCFS{}, SJF{}, LargestFirst{}} {
		base := p.Score(j, 0)
		for _, now := range []sim.Time{1, 600, 86400, 30 * sim.Day} {
			if s := p.Score(j, now); s != base {
				t.Errorf("%s.Score changed with now: %g vs %g", p.Name(), s, base)
			}
		}
	}
}

// Precedes is the single comparator shared by Orderer.Order and the
// resource manager's binary-search queue insertion; it must be a strict
// total order over distinct jobs.
func TestPrecedesTotalOrder(t *testing.T) {
	a := mkjob(1, 4, 100, 600)
	b := mkjob(2, 4, 100, 600)
	if Precedes(0, a, 0, a) {
		t.Fatal("Precedes must be irreflexive")
	}
	if !Precedes(0, a, 0, b) || Precedes(0, b, 0, a) {
		t.Fatal("equal score+submit must break by ID exactly one way")
	}
	if !Precedes(1, b, 0, a) {
		t.Fatal("higher score must precede")
	}
	c := mkjob(3, 4, 50, 600)
	if !Precedes(0, c, 0, a) {
		t.Fatal("earlier submit must precede at equal score")
	}
}

// Satellite: Orderer buffer reuse across nested Order calls. The contract
// is that the returned slice is valid only until the next Order call on
// the same Orderer; this pins the aliasing (same backing array reused),
// that a copy taken before the nested call survives it, and that growth
// past the buffer capacity still orders correctly.
func TestOrdererBufferReuseAcrossNestedCalls(t *testing.T) {
	var o Orderer
	q1 := []*job.Job{
		mkjob(1, 4, 300, 600),
		mkjob(2, 4, 100, 600),
		mkjob(3, 4, 200, 600),
	}
	first := o.Order(FCFS{}, q1, 1000, nil)
	saved := append([]job.ID(nil), ids(first)...)
	wantFirst := []job.ID{2, 3, 1}
	for i := range wantFirst {
		if saved[i] != wantFirst[i] {
			t.Fatalf("first order = %v, want %v", saved, wantFirst)
		}
	}

	// Nested call while `first` is still in scope: same-size queue must
	// reuse the same backing array, invalidating `first` as documented.
	q2 := []*job.Job{
		mkjob(7, 4, 30, 600),
		mkjob(8, 4, 10, 600),
		mkjob(9, 4, 20, 600),
	}
	second := o.Order(FCFS{}, q2, 1000, nil)
	if &first[0] != &second[0] {
		t.Fatal("Orderer allocated a fresh output buffer for a same-size nested call")
	}
	wantSecond := []job.ID{8, 9, 7}
	for i := range wantSecond {
		if second[i].ID != wantSecond[i] {
			t.Fatalf("nested order = %v, want %v", ids(second), wantSecond)
		}
	}
	// The pre-nesting copy still holds the first ordering.
	for i := range wantFirst {
		if saved[i] != wantFirst[i] {
			t.Fatalf("saved copy corrupted by nested call: %v", saved)
		}
	}

	// Growth: a larger queue reallocates but must still be correct, and a
	// subsequent small call reuses the grown buffer.
	var q3 []*job.Job
	for i := 0; i < 64; i++ {
		q3 = append(q3, mkjob(job.ID(100+i), 4, sim.Time(1000-i), 600))
	}
	third := o.Order(FCFS{}, q3, 2000, nil)
	for i := 1; i < len(third); i++ {
		if third[i-1].SubmitTime > third[i].SubmitTime {
			t.Fatal("grown-buffer order not sorted by submit time")
		}
	}
	fourth := o.Order(FCFS{}, q2, 1000, nil)
	if &fourth[0] != &third[0] {
		t.Fatal("Orderer did not reuse the grown buffer for a smaller call")
	}
}

func ids(js []*job.Job) []job.ID {
	out := make([]job.ID, len(js))
	for i, j := range js {
		out[i] = j.ID
	}
	return out
}

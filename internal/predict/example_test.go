package predict_test

import (
	"fmt"

	"cosched/internal/job"
	"cosched/internal/predict"
)

// ExampleUserAverage shows the Tsafrir-style predictor learning a user's
// characteristic runtime from history.
func ExampleUserAverage() {
	p := predict.NewUserAverage(2)
	mk := func(runtime, walltime int64) *job.Job {
		j := job.New(1, 4, 0, runtime, walltime)
		j.User = 7
		return j
	}
	fmt.Println("no history:", p.Estimate(mk(0, 3600))) // falls back to walltime
	p.Observe(mk(1000, 3600))
	p.Observe(mk(1400, 3600))
	fmt.Println("predicted:", p.Estimate(mk(0, 3600))) // 1.5 × avg(1000,1400)
	// Output:
	// no history: 3600
	// predicted: 1800
}

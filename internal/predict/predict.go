// Package predict implements runtime estimation for backfill planning.
//
// EASY backfilling plans with requested walltimes, which users overestimate
// by 2–3×; Tsafrir, Etsion & Feitelson (TPDS 2007, the paper's [31]) showed
// that replacing them with system-generated predictions — the average of
// the same user's recent actual runtimes — tightens the shadow-time
// estimate and improves both wait times and backfill accuracy. The resource
// manager consults an Estimator when building its release profile and
// backfill candidates; the ablation bench quantifies the effect.
package predict

import (
	"cosched/internal/job"
	"cosched/internal/sim"
)

// Estimator supplies the planning runtime for a job. Implementations must
// never return a value above the job's walltime (the scheduler kills at
// walltime) or below 1.
type Estimator interface {
	// Name identifies the estimator in configs and bench labels.
	Name() string
	// Estimate returns the planning runtime for a queued or running job.
	Estimate(j *job.Job) sim.Duration
	// Observe records a completed job's actual runtime.
	Observe(j *job.Job)
}

// Stable marks estimators whose Estimate for a given job is a pure
// function of the job's immutable request fields: Observe never changes
// what Estimate returns. The resource manager's incremental core relies on
// this to cache a running job's planned release time at start instead of
// re-querying the estimator every scheduling iteration. Walltime qualifies;
// UserAverage (whose history shifts with every completion) must not
// implement this interface.
type Stable interface {
	// StableEstimates reports that Estimate(j) is constant over j's
	// lifetime for every job j.
	StableEstimates() bool
}

// IsStable reports whether e declares stable estimates.
func IsStable(e Estimator) bool {
	s, ok := e.(Stable)
	return ok && s.StableEstimates()
}

// Walltime is the classic estimator: trust the user's request.
type Walltime struct{}

// Name implements Estimator.
func (Walltime) Name() string { return "walltime" }

// StableEstimates implements Stable: the walltime never changes.
func (Walltime) StableEstimates() bool { return true }

// Estimate implements Estimator.
func (Walltime) Estimate(j *job.Job) sim.Duration { return j.Walltime }

// Observe implements Estimator.
func (Walltime) Observe(*job.Job) {}

// UserAverage is the Tsafrir-style predictor: the average of the user's
// last Window actual runtimes, padded by Pad and clamped to [1, walltime].
// Jobs from users with no history fall back to the walltime.
//
// The pad absorbs within-user variability: an unpadded average
// underpredicts about half the jobs, and each underprediction lets a
// backfilled job overrun its promise and delay the protected head job —
// Tsafrir et al. counter the same effect with prediction correction and
// padding.
type UserAverage struct {
	// Window is how many recent runtimes to average (Tsafrir used 2).
	Window int
	// Pad multiplies the average (default 1.5).
	Pad float64

	history map[int][]sim.Duration
}

// NewUserAverage returns a predictor averaging the last window runtimes
// per user (window ≤ 0 defaults to 2) with the default 1.5× pad.
func NewUserAverage(window int) *UserAverage {
	if window <= 0 {
		window = 2
	}
	return &UserAverage{Window: window, Pad: 1.5, history: make(map[int][]sim.Duration)}
}

// Name implements Estimator.
func (u *UserAverage) Name() string { return "user-average" }

// Estimate implements Estimator.
func (u *UserAverage) Estimate(j *job.Job) sim.Duration {
	h := u.history[j.User]
	if len(h) == 0 {
		return j.Walltime
	}
	var sum sim.Duration
	for _, r := range h {
		sum += r
	}
	pad := u.Pad
	if pad <= 0 {
		pad = 1.5
	}
	est := sim.Duration(pad * float64(sum) / float64(len(h)))
	if est < 1 {
		est = 1
	}
	if est > j.Walltime {
		est = j.Walltime
	}
	return est
}

// Observe implements Estimator.
func (u *UserAverage) Observe(j *job.Job) {
	h := append(u.history[j.User], j.Runtime)
	if len(h) > u.Window {
		h = h[len(h)-u.Window:]
	}
	u.history[j.User] = h
}

// Users returns how many distinct users have history.
func (u *UserAverage) Users() int { return len(u.history) }

// ByName resolves an estimator name ("", "walltime", "user-average").
func ByName(name string) (Estimator, bool) {
	switch name {
	case "", "walltime":
		return Walltime{}, true
	case "user-average":
		return NewUserAverage(2), true
	default:
		return nil, false
	}
}

package predict

import (
	"testing"
	"testing/quick"

	"cosched/internal/job"
	"cosched/internal/sim"
)

func mkjob(user int, runtime, walltime sim.Duration) *job.Job {
	j := job.New(1, 4, 0, runtime, walltime)
	j.User = user
	return j
}

func TestWalltimeEstimator(t *testing.T) {
	w := Walltime{}
	j := mkjob(1, 100, 500)
	if got := w.Estimate(j); got != 500 {
		t.Fatalf("estimate = %d, want walltime 500", got)
	}
	w.Observe(j) // no-op, must not panic
	if w.Name() != "walltime" {
		t.Fatal("name")
	}
}

func TestUserAverageFallsBackToWalltime(t *testing.T) {
	u := NewUserAverage(2)
	j := mkjob(7, 100, 500)
	if got := u.Estimate(j); got != 500 {
		t.Fatalf("no-history estimate = %d, want 500", got)
	}
}

func TestUserAverageLearnsPerUser(t *testing.T) {
	u := NewUserAverage(2)
	u.Observe(mkjob(1, 100, 500))
	u.Observe(mkjob(1, 200, 500))
	u.Observe(mkjob(2, 1000, 2000))

	if got := u.Estimate(mkjob(1, 999, 500)); got != 225 {
		t.Fatalf("user 1 estimate = %d, want 1.5×avg(100,200)=225", got)
	}
	if got := u.Estimate(mkjob(2, 999, 2000)); got != 1500 {
		t.Fatalf("user 2 estimate = %d, want 1.5×1000=1500", got)
	}
	if u.Users() != 2 {
		t.Fatalf("users = %d", u.Users())
	}
}

func TestUserAverageWindowSlides(t *testing.T) {
	u := NewUserAverage(2)
	for _, rt := range []sim.Duration{100, 200, 600} {
		u.Observe(mkjob(1, rt, 1000))
	}
	// Window of 2 keeps {200, 600} → padded 1.5×400 = 600.
	if got := u.Estimate(mkjob(1, 0, 1000)); got != 600 {
		t.Fatalf("estimate = %d, want 600", got)
	}
}

func TestUserAverageClampedToWalltime(t *testing.T) {
	u := NewUserAverage(2)
	u.Observe(mkjob(1, 10000, 10000))
	// New job requests only 300s — the prediction may not exceed it.
	if got := u.Estimate(mkjob(1, 100, 300)); got != 300 {
		t.Fatalf("estimate = %d, want clamp to 300", got)
	}
}

func TestUserAverageDefaultWindow(t *testing.T) {
	if u := NewUserAverage(0); u.Window != 2 {
		t.Fatalf("default window = %d", u.Window)
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"", "walltime", "user-average"} {
		if _, ok := ByName(n); !ok {
			t.Errorf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("oracle"); ok {
		t.Error("unknown estimator resolved")
	}
}

// Property: estimates are always within [1, walltime].
func TestEstimateBoundsProperty(t *testing.T) {
	u := NewUserAverage(2)
	f := func(user uint8, runtimes []uint16, wall uint16) bool {
		for _, rt := range runtimes {
			u.Observe(mkjob(int(user), sim.Duration(rt), sim.Duration(rt)+1))
		}
		w := sim.Duration(wall) + 1
		got := u.Estimate(mkjob(int(user), 0, w))
		return got >= 1 && got <= w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package probe samples per-domain scheduler state at a fixed virtual
// period during a simulation — utilization, held nodes, queue depth,
// running and completed counts — and renders the series as CSV. It is the
// productized form of the instrumentation used to diagnose hold cascades
// while building this repository: dynamics like "the machine is 97% held
// after day 20" are invisible in end-of-run averages.
package probe

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cosched/internal/coupled"
	"cosched/internal/sim"
)

// Sample is one observation of one domain.
type Sample struct {
	Time      sim.Time
	Domain    string
	Free      int
	Held      int
	Running   int // nodes executing jobs
	Queue     int // queued jobs
	Holding   int // holding jobs
	Completed int
}

// Recorder collects samples from a coupled simulation.
type Recorder struct {
	period  sim.Duration
	samples []Sample
	domains []string
}

// Attach arms a periodic sampler on the simulation. Call before Run; the
// sampler stops itself when every event drains (it re-arms only while
// other events are pending, so it never keeps the simulation alive).
func Attach(s *coupled.Sim, domains []string, period sim.Duration) (*Recorder, error) {
	if period <= 0 {
		return nil, fmt.Errorf("probe: period must be positive")
	}
	for _, d := range domains {
		if s.Manager(d) == nil {
			return nil, fmt.Errorf("probe: unknown domain %q", d)
		}
	}
	r := &Recorder{period: period, domains: append([]string(nil), domains...)}
	eng := s.Engine()
	var tick func(now sim.Time)
	tick = func(now sim.Time) {
		for _, d := range r.domains {
			m := s.Manager(d)
			pool := m.Pool()
			r.samples = append(r.samples, Sample{
				Time:      now,
				Domain:    d,
				Free:      pool.Free(),
				Held:      pool.Held(),
				Running:   pool.Running(),
				Queue:     m.QueueLength(),
				Holding:   m.HoldingCount(),
				Completed: m.CompletedCount(),
			})
		}
		// Re-arm only while the simulation still has work: a probe must
		// never be the thing keeping the event loop alive.
		if eng.Pending() > 0 {
			eng.After(r.period, sim.PriorityMetrics, tick)
		}
	}
	eng.After(period, sim.PriorityMetrics, tick)
	return r, nil
}

// Samples returns the collected series (time-major, domain-minor).
func (r *Recorder) Samples() []Sample { return r.samples }

// Len returns the number of samples.
func (r *Recorder) Len() int { return len(r.samples) }

// WriteCSV emits the series with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_s,domain,free,held,running_nodes,queued_jobs,holding_jobs,completed_jobs"); err != nil {
		return err
	}
	for _, s := range r.samples {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d,%d,%d,%d\n",
			s.Time, s.Domain, s.Free, s.Held, s.Running, s.Queue, s.Holding, s.Completed); err != nil {
			return err
		}
	}
	return nil
}

// PeakHeldFraction returns, per domain, the maximum held fraction observed
// — the headline number for diagnosing hold cascades.
func (r *Recorder) PeakHeldFraction() map[string]float64 {
	out := make(map[string]float64, len(r.domains))
	for _, s := range r.samples {
		total := s.Free + s.Held + s.Running
		if total == 0 {
			continue
		}
		f := float64(s.Held) / float64(total)
		if f > out[s.Domain] {
			out[s.Domain] = f
		}
	}
	return out
}

// Summary renders one line per domain: peak held fraction, peak queue.
func (r *Recorder) Summary() string {
	peakHeld := r.PeakHeldFraction()
	peakQueue := map[string]int{}
	for _, s := range r.samples {
		if s.Queue > peakQueue[s.Domain] {
			peakQueue[s.Domain] = s.Queue
		}
	}
	doms := append([]string(nil), r.domains...)
	sort.Strings(doms)
	var b strings.Builder
	for _, d := range doms {
		fmt.Fprintf(&b, "%s: peak held %.1f%%, peak queue %d jobs\n",
			d, 100*peakHeld[d], peakQueue[d])
	}
	return b.String()
}

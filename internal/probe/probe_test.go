package probe

import (
	"bytes"
	"strings"
	"testing"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/job"
	"cosched/internal/sim"
)

func buildSim(t *testing.T) *coupled.Sim {
	t.Helper()
	ja := job.New(1, 50, 0, sim.Hour, sim.Hour)
	jb := job.New(1, 4, 30*sim.Minute, sim.Hour, sim.Hour)
	ja.Mates = []job.MateRef{{Domain: "B", Job: 1}}
	jb.Mates = []job.MateRef{{Domain: "A", Job: 1}}
	extra := job.New(2, 20, 5*sim.Minute, 2*sim.Hour, 2*sim.Hour)
	s, err := coupled.New(coupled.Options{Domains: []coupled.DomainConfig{
		{Name: "A", Nodes: 100, Backfilling: true,
			Cosched: cosched.DefaultConfig(cosched.Hold), Trace: []*job.Job{ja, extra}},
		{Name: "B", Nodes: 8, Backfilling: true,
			Cosched: cosched.DefaultConfig(cosched.Yield), Trace: []*job.Job{jb}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRecorderSamplesBothDomains(t *testing.T) {
	s := buildSim(t)
	rec, err := Attach(s, []string{"A", "B"}, 10*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.StuckJobs != 0 {
		t.Fatalf("stuck = %d", res.StuckJobs)
	}
	if rec.Len() == 0 {
		t.Fatal("no samples collected")
	}
	domains := map[string]bool{}
	sawHeld := false
	for _, smp := range rec.Samples() {
		domains[smp.Domain] = true
		if smp.Domain == "A" && smp.Held > 0 {
			sawHeld = true
		}
		if smp.Free < 0 || smp.Held < 0 || smp.Queue < 0 {
			t.Fatalf("negative sample: %+v", smp)
		}
	}
	if !domains["A"] || !domains["B"] {
		t.Fatalf("domains sampled: %v", domains)
	}
	// The hold scheme parked job A's 50 nodes for ~30 minutes; the
	// 10-minute probe must have seen it.
	if !sawHeld {
		t.Fatal("probe never observed the held nodes")
	}
	peak := rec.PeakHeldFraction()
	if peak["A"] < 0.4 || peak["A"] > 0.6 {
		t.Fatalf("peak held fraction A = %.2f, want ≈0.5", peak["A"])
	}
	if !strings.Contains(rec.Summary(), "peak held") {
		t.Fatal("summary rendering")
	}
}

func TestRecorderCSV(t *testing.T) {
	s := buildSim(t)
	rec, err := Attach(s, []string{"A"}, 15*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != rec.Len()+1 {
		t.Fatalf("csv lines = %d, want %d+header", len(lines), rec.Len())
	}
	if !strings.HasPrefix(lines[0], "time_s,domain,") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], ",A,") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestRecorderDoesNotKeepSimAlive(t *testing.T) {
	// With a tiny period the probe must still stop once real work drains.
	s := buildSim(t)
	if _, err := Attach(s, []string{"A", "B"}, sim.Minute); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	// The pair runs 1h starting at 30min; everything ends ≈ 2h05m. A
	// self-perpetuating probe would run to the simulation horizon instead.
	if res.Makespan > 4*sim.Hour {
		t.Fatalf("makespan %d — probe kept the simulation alive", res.Makespan)
	}
}

func TestAttachValidation(t *testing.T) {
	s := buildSim(t)
	if _, err := Attach(s, []string{"nope"}, sim.Minute); err == nil {
		t.Fatal("unknown domain accepted")
	}
	if _, err := Attach(s, []string{"A"}, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

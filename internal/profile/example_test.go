package profile_test

import (
	"fmt"

	"cosched/internal/profile"
)

// ExampleTimeline plans jobs onto an availability timeline, the substrate
// of the co-reservation baseline.
func ExampleTimeline() {
	tl := profile.New(100)
	// A running job occupies 70 nodes until t=500.
	if _, err := tl.Commit(0, 500, 70); err != nil {
		panic(err)
	}
	fmt.Println("30 nodes now:", tl.EarliestStart(0, 1000, 30))
	fmt.Println("60 nodes now:", tl.EarliestStart(0, 1000, 60))
	// Output:
	// 30 nodes now: 0
	// 60 nodes now: 500
}

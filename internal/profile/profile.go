// Package profile implements a node-availability timeline: a step function
// of committed node usage over future time, supporting feasibility queries
// ("can n nodes run for d seconds starting at t?"), earliest-start search,
// and commitment/release of reservations.
//
// It is the substrate for the co-reservation baseline (internal/reserve)
// that the paper's §III argues against: advance co-reservation plans every
// job's placement on the timeline at submission, which is exactly what this
// structure makes efficient.
package profile

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cosched/internal/sim"
)

// ErrOverCapacity is returned when a commitment would exceed total nodes.
var ErrOverCapacity = errors.New("profile: commitment exceeds capacity")

// ErrUnknownCommit is returned when releasing an unknown commitment.
var ErrUnknownCommit = errors.New("profile: unknown commitment")

// Infinity marks an unbounded commitment end.
const Infinity sim.Time = math.MaxInt64

// commitment is one committed interval of nodes.
type commitment struct {
	start sim.Time
	end   sim.Time // exclusive; Infinity for open-ended
	nodes int
}

// Timeline tracks committed node usage over future time for one machine.
type Timeline struct {
	total   int
	nextID  int64
	commits map[int64]commitment
}

// New returns an empty timeline over total nodes.
func New(total int) *Timeline {
	if total <= 0 {
		panic("profile: total must be positive")
	}
	return &Timeline{total: total, commits: make(map[int64]commitment)}
}

// Total returns the machine size.
func (t *Timeline) Total() int { return t.total }

// Commitments returns the number of live commitments.
func (t *Timeline) Commitments() int { return len(t.commits) }

// UsedAt returns committed nodes at instant x.
func (t *Timeline) UsedAt(x sim.Time) int {
	used := 0
	for _, c := range t.commits {
		if c.start <= x && x < c.end {
			used += c.nodes
		}
	}
	return used
}

// FreeAt returns free nodes at instant x.
func (t *Timeline) FreeAt(x sim.Time) int { return t.total - t.UsedAt(x) }

// maxUsedDuring returns the peak committed nodes over [start, end).
func (t *Timeline) maxUsedDuring(start, end sim.Time) int {
	// Evaluate at every commitment boundary inside the window plus the
	// window start; the step function is constant between boundaries.
	peak := t.UsedAt(start)
	for _, c := range t.commits {
		if c.start > start && c.start < end {
			if u := t.UsedAt(c.start); u > peak {
				peak = u
			}
		}
	}
	return peak
}

// CanCommit reports whether nodes can run over [start, start+dur).
func (t *Timeline) CanCommit(start sim.Time, dur sim.Duration, nodes int) bool {
	if nodes <= 0 || nodes > t.total || dur <= 0 {
		return false
	}
	end := saturatingAdd(start, dur)
	return t.maxUsedDuring(start, end)+nodes <= t.total
}

// EarliestStart returns the earliest time ≥ after at which nodes could run
// for dur without exceeding capacity. It always succeeds (the timeline
// eventually drains unless open-ended commitments block; with open-ended
// commitments consuming too much, it returns Infinity).
func (t *Timeline) EarliestStart(after sim.Time, dur sim.Duration, nodes int) sim.Time {
	if nodes <= 0 || nodes > t.total || dur <= 0 {
		return Infinity
	}
	// Candidate starts: `after` and every commitment end ≥ after (usage
	// only decreases at ends).
	candidates := []sim.Time{after}
	for _, c := range t.commits {
		if c.end != Infinity && c.end > after {
			candidates = append(candidates, c.end)
		}
	}
	sort.Slice(candidates, func(a, b int) bool { return candidates[a] < candidates[b] })
	for _, s := range candidates {
		if t.CanCommit(s, dur, nodes) {
			return s
		}
	}
	return Infinity
}

// Commit reserves nodes over [start, start+dur) and returns a commitment
// ID. dur may be Infinity-like large; use CommitOpen for truly unbounded.
func (t *Timeline) Commit(start sim.Time, dur sim.Duration, nodes int) (int64, error) {
	if !t.CanCommit(start, dur, nodes) {
		return 0, fmt.Errorf("%w: %d nodes at [%d, +%d)", ErrOverCapacity, nodes, start, dur)
	}
	t.nextID++
	t.commits[t.nextID] = commitment{start: start, end: saturatingAdd(start, dur), nodes: nodes}
	return t.nextID, nil
}

// Release removes a commitment entirely.
func (t *Timeline) Release(id int64) error {
	if _, ok := t.commits[id]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownCommit, id)
	}
	delete(t.commits, id)
	return nil
}

// TruncateAt shortens a commitment to end at x (early job completion frees
// the tail of its walltime reservation for later arrivals).
func (t *Timeline) TruncateAt(id int64, x sim.Time) error {
	c, ok := t.commits[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownCommit, id)
	}
	if x <= c.start {
		delete(t.commits, id)
		return nil
	}
	if x < c.end {
		c.end = x
		t.commits[id] = c
	}
	return nil
}

// GC drops commitments entirely in the past (end ≤ now), bounding memory
// over long simulations.
func (t *Timeline) GC(now sim.Time) int {
	dropped := 0
	for id, c := range t.commits {
		if c.end != Infinity && c.end <= now {
			delete(t.commits, id)
			dropped++
		}
	}
	return dropped
}

func saturatingAdd(a sim.Time, b sim.Duration) sim.Time {
	if b > 0 && a > math.MaxInt64-b {
		return Infinity
	}
	return a + b
}

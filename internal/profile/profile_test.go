package profile

import (
	"errors"
	"testing"
	"testing/quick"

	"cosched/internal/sim"
)

func TestCommitAndQuery(t *testing.T) {
	tl := New(100)
	if !tl.CanCommit(0, 100, 100) {
		t.Fatal("empty timeline rejects full machine")
	}
	id, err := tl.Commit(10, 100, 60) // [10, 110): 60 nodes
	if err != nil {
		t.Fatal(err)
	}
	if tl.UsedAt(9) != 0 || tl.UsedAt(10) != 60 || tl.UsedAt(109) != 60 || tl.UsedAt(110) != 0 {
		t.Fatalf("step function wrong: %d %d %d %d",
			tl.UsedAt(9), tl.UsedAt(10), tl.UsedAt(109), tl.UsedAt(110))
	}
	if tl.FreeAt(50) != 40 {
		t.Fatalf("free at 50 = %d", tl.FreeAt(50))
	}
	// 50 nodes overlapping the window must be rejected, 40 accepted.
	if tl.CanCommit(0, 20, 50) {
		t.Fatal("overlapping over-commit accepted")
	}
	if !tl.CanCommit(0, 20, 40) {
		t.Fatal("fitting commit rejected")
	}
	// Fully after the window: fine.
	if !tl.CanCommit(110, 1000, 100) {
		t.Fatal("post-window commit rejected")
	}
	if err := tl.Release(id); err != nil {
		t.Fatal(err)
	}
	if tl.UsedAt(50) != 0 {
		t.Fatal("release did not free nodes")
	}
}

func TestCommitRejectsBadArgs(t *testing.T) {
	tl := New(10)
	if _, err := tl.Commit(0, 10, 11); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("err = %v", err)
	}
	if tl.CanCommit(0, 0, 5) || tl.CanCommit(0, 10, 0) {
		t.Fatal("degenerate commit accepted")
	}
	if err := tl.Release(99); !errors.Is(err, ErrUnknownCommit) {
		t.Fatalf("err = %v", err)
	}
}

func TestEarliestStart(t *testing.T) {
	tl := New(100)
	// Two committed layers: [0,100): 70 nodes; [100,200): 40 nodes.
	if _, err := tl.Commit(0, 100, 70); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Commit(100, 100, 40); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		nodes int
		dur   sim.Duration
		want  sim.Time
	}{
		{30, 50, 0},    // fits beside the 70
		{40, 50, 100},  // must wait for the first layer to end
		{70, 50, 200},  // must wait for both
		{100, 10, 200}, // whole machine
	}
	for _, c := range cases {
		if got := tl.EarliestStart(0, c.dur, c.nodes); got != c.want {
			t.Errorf("EarliestStart(%d nodes, %d s) = %d, want %d", c.nodes, c.dur, got, c.want)
		}
	}
	// `after` is respected.
	if got := tl.EarliestStart(150, 10, 30); got != 150 {
		t.Errorf("after=150 → %d, want 150", got)
	}
}

func TestEarliestStartWindowStraddle(t *testing.T) {
	// A long job must not start in a gap too short for it.
	tl := New(10)
	if _, err := tl.Commit(100, 100, 10); err != nil { // busy [100,200)
		t.Fatal(err)
	}
	// 10-node job of 50s at t=0 would end at 50 — fits before the busy window.
	if got := tl.EarliestStart(0, 50, 10); got != 0 {
		t.Errorf("short pre-gap start = %d, want 0", got)
	}
	// 150s job cannot fit before (would straddle into [100,200)) → 200.
	if got := tl.EarliestStart(0, 150, 10); got != 200 {
		t.Errorf("straddling job start = %d, want 200", got)
	}
}

func TestTruncateFreesTail(t *testing.T) {
	tl := New(10)
	id, err := tl.Commit(0, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Early completion at t=300 frees [300, 1000).
	if err := tl.TruncateAt(id, 300); err != nil {
		t.Fatal(err)
	}
	if tl.UsedAt(299) != 10 || tl.UsedAt(300) != 0 {
		t.Fatalf("truncate boundary wrong: %d / %d", tl.UsedAt(299), tl.UsedAt(300))
	}
	if got := tl.EarliestStart(0, 100, 10); got != 300 {
		t.Fatalf("earliest after truncate = %d, want 300", got)
	}
	// Truncating before the start removes the commitment.
	id2, _ := tl.Commit(500, 100, 5)
	if err := tl.TruncateAt(id2, 400); err != nil {
		t.Fatal(err)
	}
	if tl.UsedAt(550) != 0 {
		t.Fatal("truncate-before-start did not remove commitment")
	}
	if err := tl.TruncateAt(999, 0); !errors.Is(err, ErrUnknownCommit) {
		t.Fatalf("err = %v", err)
	}
}

func TestGC(t *testing.T) {
	tl := New(10)
	a, _ := tl.Commit(0, 100, 5)
	b, _ := tl.Commit(50, 100, 5)
	_ = a
	_ = b
	if n := tl.GC(100); n != 1 {
		t.Fatalf("GC dropped %d, want 1 (only the [0,100) commitment)", n)
	}
	if tl.Commitments() != 1 {
		t.Fatalf("commitments = %d", tl.Commitments())
	}
}

// Property: a sequence of commitments accepted by CanCommit never drives
// usage above capacity at any probed instant, and EarliestStart's answer
// is always committable.
func TestTimelineInvariantsProperty(t *testing.T) {
	type req struct {
		Start uint16
		Dur   uint8
		Nodes uint8
	}
	f := func(reqs []req) bool {
		tl := New(64)
		for _, r := range reqs {
			nodes := int(r.Nodes)%64 + 1
			dur := sim.Duration(r.Dur) + 1
			start := tl.EarliestStart(sim.Time(r.Start), dur, nodes)
			if start == Infinity {
				return false // always satisfiable on a draining timeline
			}
			if start < sim.Time(r.Start) {
				return false
			}
			if _, err := tl.Commit(start, dur, nodes); err != nil {
				return false
			}
		}
		// Probe capacity at every commitment boundary.
		for _, c := range tl.commits {
			if tl.UsedAt(c.start) > tl.total {
				return false
			}
			if c.end != Infinity && tl.UsedAt(c.end-1) > tl.total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package proto

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/sim"
)

// Client implements cosched.Peer over a single connection. Calls are
// serialized (one outstanding request at a time), matching the synchronous
// structure of Algorithm 1. Safe for concurrent use.
//
// A Client is single-use with respect to transport failures: after any
// read/write/deadline error the connection may hold a stale, half-read, or
// late response, so the client marks itself broken, closes the conn, and
// fails every later call instantly with a StageBroken TransportError
// wrapping ErrBrokenConn. Without this, one timed-out call would desync
// the request/response pairing and every subsequent call would die on a
// "sequence mismatch" against the previous call's late answer. Callers
// that want to survive transport failures redial (see internal/peerlink).
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	seq     uint64
	timeout time.Duration
	domain  string // learned from Ping; "" until then
	broken  bool
}

// NewClient wraps conn. timeout bounds each round trip; 0 means no
// deadline (useful for net.Pipe transports inside single-threaded tests).
func NewClient(conn net.Conn, timeout time.Duration) *Client {
	return &Client{conn: conn, timeout: timeout}
}

// Dial connects to a coscheduling daemon over TCP. timeout bounds both the
// TCP connect and each round trip; DialTimeouts splits the two.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialTimeouts(addr, timeout, timeout)
}

// DialTimeouts connects to a coscheduling daemon over TCP with separate
// bounds for the TCP connect (dialTimeout) and each round trip
// (callTimeout, 0 = no deadline). The connection is verified with a Ping.
func DialTimeouts(addr string, dialTimeout, callTimeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, &TransportError{Stage: StageDial, Err: fmt.Errorf("dial %s: %w", addr, err)}
	}
	c := NewClient(conn, callTimeout)
	if _, err := c.Ping(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Broken reports whether an earlier transport failure retired this client.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// breakLocked retires the client after a transport failure: the conn is
// closed (draining any in-flight stale response into the void) and every
// later call fails fast with ErrBrokenConn.
func (c *Client) breakLocked(method, stage string, err error) error {
	c.broken = true
	c.conn.Close()
	return &TransportError{Method: method, Stage: stage, Err: err}
}

// call performs one round trip.
func (c *Client) call(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return Response{}, &TransportError{Method: req.Method, Stage: StageBroken, Err: ErrBrokenConn}
	}
	c.seq++
	req.Seq = c.seq
	if c.timeout > 0 {
		//simlint:allow R2 wire I/O deadline on a real socket; unrelated to simulation time
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return Response{}, c.breakLocked(req.Method, StageDeadline, err)
		}
	}
	if err := WriteFrame(c.conn, &req); err != nil {
		return Response{}, c.breakLocked(req.Method, StageWrite, err)
	}
	var resp Response
	if err := ReadFrame(c.conn, &resp); err != nil {
		return Response{}, c.breakLocked(req.Method, StageRead, err)
	}
	if resp.Seq != req.Seq {
		// A mismatched sequence means the stream carries a late answer to
		// an earlier request — the framing is desynced for good.
		return Response{}, c.breakLocked(req.Method, StageRead,
			fmt.Errorf("sequence mismatch: sent %d, got %d", req.Seq, resp.Seq))
	}
	if resp.Error != "" {
		return resp, &RemoteError{Method: req.Method, Msg: resp.Error}
	}
	return resp, nil
}

// Ping checks liveness and returns the remote domain name.
func (c *Client) Ping() (string, error) {
	resp, err := c.call(Request{Method: MethodPing})
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	c.domain = resp.Domain
	c.mu.Unlock()
	return resp.Domain, nil
}

var _ cosched.Peer = (*Client)(nil)

// PeerName implements cosched.Peer; it returns the domain learned from the
// last Ping (Dial pings automatically).
func (c *Client) PeerName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.domain
}

// GetMateJob implements cosched.Peer.
func (c *Client) GetMateJob(id job.ID) (bool, error) {
	resp, err := c.call(Request{Method: MethodGetMateJob, JobID: id})
	if err != nil {
		return false, err
	}
	return resp.Known, nil
}

// GetMateStatus implements cosched.Peer.
func (c *Client) GetMateStatus(id job.ID) (cosched.MateStatus, error) {
	resp, err := c.call(Request{Method: MethodGetMateStatus, JobID: id})
	if err != nil {
		return cosched.StatusUnknown, err
	}
	return cosched.ParseMateStatus(resp.Status)
}

// CanStartMate implements cosched.Peer.
func (c *Client) CanStartMate(id job.ID) (bool, error) {
	resp, err := c.call(Request{Method: MethodCanStartMate, JobID: id})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// TryStartMate implements cosched.Peer.
func (c *Client) TryStartMate(id job.ID) (bool, error) {
	resp, err := c.call(Request{Method: MethodTryStartMate, JobID: id})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// StartMate implements cosched.Peer.
func (c *Client) StartMate(id job.ID) error {
	_, err := c.call(Request{Method: MethodStartMate, JobID: id})
	return err
}

var (
	_ cosched.CoStarter  = (*Client)(nil)
	_ cosched.Reconciler = (*Client)(nil)
)

// TryStartMateAt implements cosched.CoStarter: TryStartMate carrying the
// caller's proposed co-start instant.
func (c *Client) TryStartMateAt(id job.ID, at sim.Time) (bool, error) {
	resp, err := c.call(Request{Method: MethodTryStartMate, JobID: id, At: &at})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// StartMateAt implements cosched.CoStarter.
func (c *Client) StartMateAt(id job.ID, at sim.Time) error {
	_, err := c.call(Request{Method: MethodStartMate, JobID: id, At: &at})
	return err
}

// ReconcileMates implements cosched.Reconciler over the wire.
func (c *Client) ReconcileMates(from string, views []cosched.MateView) ([]cosched.MateView, error) {
	resp, err := c.call(Request{Method: MethodReconcile, From: from, Views: ViewsToWire(views)})
	if err != nil {
		return nil, err
	}
	return ViewsFromWire(resp.Views)
}

package proto

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cosched/internal/cosched"
	"cosched/internal/job"
)

// Client implements cosched.Peer over a single connection. Calls are
// serialized (one outstanding request at a time), matching the synchronous
// structure of Algorithm 1. Safe for concurrent use.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	seq     uint64
	timeout time.Duration
	domain  string // learned from Ping; "" until then
}

// NewClient wraps conn. timeout bounds each round trip; 0 means no
// deadline (useful for net.Pipe transports inside single-threaded tests).
func NewClient(conn net.Conn, timeout time.Duration) *Client {
	return &Client{conn: conn, timeout: timeout}
}

// Dial connects to a coscheduling daemon over TCP.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("proto: dial %s: %w", addr, err)
	}
	c := NewClient(conn, timeout)
	if _, err := c.Ping(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// call performs one round trip.
func (c *Client) call(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	req.Seq = c.seq
	if c.timeout > 0 {
		//simlint:allow R2 wire I/O deadline on a real socket; unrelated to simulation time
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return Response{}, err
		}
	}
	if err := WriteFrame(c.conn, &req); err != nil {
		return Response{}, fmt.Errorf("proto: write %s: %w", req.Method, err)
	}
	var resp Response
	if err := ReadFrame(c.conn, &resp); err != nil {
		return Response{}, fmt.Errorf("proto: read %s: %w", req.Method, err)
	}
	if resp.Seq != req.Seq {
		return Response{}, fmt.Errorf("proto: sequence mismatch: sent %d, got %d", req.Seq, resp.Seq)
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("proto: remote error on %s: %s", req.Method, resp.Error)
	}
	return resp, nil
}

// Ping checks liveness and returns the remote domain name.
func (c *Client) Ping() (string, error) {
	resp, err := c.call(Request{Method: MethodPing})
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	c.domain = resp.Domain
	c.mu.Unlock()
	return resp.Domain, nil
}

var _ cosched.Peer = (*Client)(nil)

// PeerName implements cosched.Peer; it returns the domain learned from the
// last Ping (Dial pings automatically).
func (c *Client) PeerName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.domain
}

// GetMateJob implements cosched.Peer.
func (c *Client) GetMateJob(id job.ID) (bool, error) {
	resp, err := c.call(Request{Method: MethodGetMateJob, JobID: id})
	if err != nil {
		return false, err
	}
	return resp.Known, nil
}

// GetMateStatus implements cosched.Peer.
func (c *Client) GetMateStatus(id job.ID) (cosched.MateStatus, error) {
	resp, err := c.call(Request{Method: MethodGetMateStatus, JobID: id})
	if err != nil {
		return cosched.StatusUnknown, err
	}
	return cosched.ParseMateStatus(resp.Status)
}

// CanStartMate implements cosched.Peer.
func (c *Client) CanStartMate(id job.ID) (bool, error) {
	resp, err := c.call(Request{Method: MethodCanStartMate, JobID: id})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// TryStartMate implements cosched.Peer.
func (c *Client) TryStartMate(id job.ID) (bool, error) {
	resp, err := c.call(Request{Method: MethodTryStartMate, JobID: id})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// StartMate implements cosched.Peer.
func (c *Client) StartMate(id job.ID) error {
	_, err := c.call(Request{Method: MethodStartMate, JobID: id})
	return err
}

package proto

import (
	"errors"
	"fmt"
)

// Error taxonomy for peer calls. Every failure of a Client call is one of
// exactly two classes, and resilience layers (internal/peerlink) route on
// the distinction:
//
//   - RemoteError: the frame exchange worked; the remote manager answered
//     with an application-level error (resp.Error != ""). The connection
//     is healthy and must not be torn down.
//   - TransportError: the exchange itself failed (dial, deadline, write,
//     read, or framing desync). The connection can no longer be trusted to
//     frame-align — a late response to a timed-out request would be read
//     as the answer to the *next* request — so the client marks itself
//     broken and closes the conn.
//
// Both classes map to "status unknown" at the Algorithm 1 call site; the
// split only matters for connection management.

// Transport stages, recorded in TransportError.Stage. The stage determines
// retry safety: a request that failed at StageDial, StageDeadline,
// StageWrite, or StageBroken never left this host, so resending it (on a
// fresh connection) cannot double-execute anything. A StageRead failure is
// ambiguous — the peer may have executed the request and the answer was
// lost — so only idempotent queries may be retried.
const (
	StageDial     = "dial"
	StageDeadline = "deadline"
	StageWrite    = "write"
	StageRead     = "read"
	StageBroken   = "broken"
)

// ErrBrokenConn is the sentinel inside the TransportError returned by every
// call after an earlier transport failure broke the client.
var ErrBrokenConn = errors.New("connection broken by an earlier transport error")

// TransportError is a failed frame exchange. It wraps the underlying I/O
// error and records the stage the exchange died at.
type TransportError struct {
	Method string // peer method in flight ("" for dial failures)
	Stage  string // StageDial, StageDeadline, StageWrite, StageRead, StageBroken
	Err    error
}

func (e *TransportError) Error() string {
	if e.Method == "" {
		return fmt.Sprintf("proto: %s: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("proto: %s %s: %v", e.Stage, e.Method, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// RemoteError is an application-level error answered by the remote manager
// over a healthy connection.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("proto: remote error on %s: %s", e.Method, e.Msg)
}

// IsRemote reports whether err is (or wraps) a RemoteError — the peer
// answered; the transport is healthy.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// ErrorStage extracts the transport stage from err, or "" if err is not a
// TransportError (remote errors, injected faults, unknown errors).
func ErrorStage(err error) string {
	var te *TransportError
	if errors.As(err, &te) {
		return te.Stage
	}
	return ""
}

// RequestMayHaveReached reports whether the request behind err may have
// been executed by the peer. Only a StageRead failure (or an error of
// unknown provenance) is ambiguous; every other stage dies before the
// frame leaves this host. Resilience layers use this to decide whether a
// non-idempotent call (TryStartMate, StartMate) is safe to retry.
func RequestMayHaveReached(err error) bool {
	switch ErrorStage(err) {
	case StageDial, StageDeadline, StageWrite, StageBroken:
		return false
	default:
		return true
	}
}

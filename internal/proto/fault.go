package proto

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/sim"
)

// ErrInjected is the error surfaced by a FaultInjector on a failed call.
var ErrInjected = errors.New("proto: injected fault")

// FaultInjector wraps a Peer and injects a deterministic, seeded stream of
// chaos — the middleware used to exercise Algorithm 1's fault-tolerance
// path ("status unknown ⇒ start normally") under partial failures, without
// killing the peer entirely. Three independent modes compose per call, in
// a fixed order so the stream stays reproducible (same seed and call
// sequence ⇒ same chaos):
//
//  1. latency (WithLatency): sleep before forwarding, simulating a slow
//     network — only meaningful on the live/wire path, where it exercises
//     per-call deadline budgets;
//  2. connection drop (WithDrops): invoke a caller-supplied dropper
//     (typically peerlink.Link.BreakConn or a conn.Close) before
//     forwarding, so the forwarded call hits a dead connection;
//  3. injected failure (the NewFaultInjector rate): fail the call outright
//     with ErrInjected.
//
// Safe for concurrent use once configured: live daemons call peers from
// several goroutines. Configuration (WithLatency, WithDrops) must finish
// before the first call.
type FaultInjector struct {
	inner cosched.Peer
	// rate is the failure probability per call, in [0, 1].
	rate float64
	// latencyRate/latency: injected-delay probability and duration.
	latencyRate float64
	latency     time.Duration
	// dropRate/dropper: connection-drop probability and the hook that cuts
	// the wire.
	dropRate float64
	dropper  func()

	mu sync.Mutex
	// state is a splitmix64 stream (kept local to avoid importing the
	// workload package from the protocol layer).
	state uint64

	calls   int
	failed  int
	delayed int
	dropped int
}

// NewFaultInjector wraps inner, failing each call with the given
// probability. Rates outside [0, 1] are clamped.
func NewFaultInjector(inner cosched.Peer, rate float64, seed uint64) *FaultInjector {
	return &FaultInjector{inner: inner, rate: clampRate(rate), state: seed}
}

func clampRate(r float64) float64 {
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// WithLatency adds injected latency: each call sleeps for d with the given
// probability before being forwarded. Returns f for chaining. Configure
// before the first call.
func (f *FaultInjector) WithLatency(rate float64, d time.Duration) *FaultInjector {
	f.latencyRate = clampRate(rate)
	f.latency = d
	return f
}

// WithDrops adds connection drops: with the given probability, dropper is
// invoked (cutting the underlying connection) before the call is
// forwarded, so the forwarded call exercises the dead-conn path. Returns f
// for chaining. Configure before the first call.
func (f *FaultInjector) WithDrops(rate float64, dropper func()) *FaultInjector {
	f.dropRate = clampRate(rate)
	f.dropper = dropper
	return f
}

// Calls returns the number of intercepted calls.
func (f *FaultInjector) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Failed returns how many calls were failed outright.
func (f *FaultInjector) Failed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}

// Delayed returns how many calls had latency injected.
func (f *FaultInjector) Delayed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delayed
}

// Dropped returns how many calls had the connection cut under them.
func (f *FaultInjector) Dropped() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// next draws a uniform value in [0, 1). Callers hold f.mu.
func (f *FaultInjector) next() float64 {
	f.state += 0x9e3779b97f4a7c15
	z := f.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// intercept applies the configured chaos to one call: latency, then a
// connection drop, then an injected failure. A non-nil return is the error
// to surface without forwarding. Draws happen in a fixed order under the
// lock (and only for enabled modes, so rate-only injectors reproduce the
// exact historical stream); the sleep and the drop run outside it.
func (f *FaultInjector) intercept() error {
	f.mu.Lock()
	f.calls++
	var delay time.Duration
	var drop func()
	if f.latencyRate > 0 && f.next() < f.latencyRate {
		f.delayed++
		delay = f.latency
	}
	if f.dropRate > 0 && f.next() < f.dropRate {
		f.dropped++
		drop = f.dropper
	}
	var err error
	if f.rate > 0 && f.next() < f.rate {
		f.failed++
		err = fmt.Errorf("%w (call %d)", ErrInjected, f.calls)
	}
	f.mu.Unlock()
	if delay > 0 {
		//simlint:allow R2 injected wire latency for the live chaos harness; the sim-pure harnesses configure no latency
		time.Sleep(delay)
	}
	if drop != nil {
		drop()
	}
	return err
}

var _ cosched.Peer = (*FaultInjector)(nil)

// PeerName implements cosched.Peer.
func (f *FaultInjector) PeerName() string { return f.inner.PeerName() }

// GetMateJob implements cosched.Peer.
func (f *FaultInjector) GetMateJob(id job.ID) (bool, error) {
	if err := f.intercept(); err != nil {
		return false, err
	}
	return f.inner.GetMateJob(id)
}

// GetMateStatus implements cosched.Peer.
func (f *FaultInjector) GetMateStatus(id job.ID) (cosched.MateStatus, error) {
	if err := f.intercept(); err != nil {
		return cosched.StatusUnknown, err
	}
	return f.inner.GetMateStatus(id)
}

// CanStartMate implements cosched.Peer.
func (f *FaultInjector) CanStartMate(id job.ID) (bool, error) {
	if err := f.intercept(); err != nil {
		return false, err
	}
	return f.inner.CanStartMate(id)
}

// TryStartMate implements cosched.Peer.
func (f *FaultInjector) TryStartMate(id job.ID) (bool, error) {
	if err := f.intercept(); err != nil {
		return false, err
	}
	return f.inner.TryStartMate(id)
}

// StartMate implements cosched.Peer.
func (f *FaultInjector) StartMate(id job.ID) error {
	if err := f.intercept(); err != nil {
		return err
	}
	return f.inner.StartMate(id)
}

var (
	_ cosched.CoStarter  = (*FaultInjector)(nil)
	_ cosched.Reconciler = (*FaultInjector)(nil)
)

// TryStartMateAt implements cosched.CoStarter; the chaos draw is identical
// to TryStartMate's (one intercept per call), so wrapping an extension-aware
// peer leaves historical seed streams untouched. A plain-Peer inner degrades
// to the instant-free call.
func (f *FaultInjector) TryStartMateAt(id job.ID, at sim.Time) (bool, error) {
	if err := f.intercept(); err != nil {
		return false, err
	}
	if cs, ok := f.inner.(cosched.CoStarter); ok {
		return cs.TryStartMateAt(id, at)
	}
	return f.inner.TryStartMate(id)
}

// StartMateAt implements cosched.CoStarter.
func (f *FaultInjector) StartMateAt(id job.ID, at sim.Time) error {
	if err := f.intercept(); err != nil {
		return err
	}
	if cs, ok := f.inner.(cosched.CoStarter); ok {
		return cs.StartMateAt(id, at)
	}
	return f.inner.StartMate(id)
}

// ReconcileMates implements cosched.Reconciler with one chaos draw, like
// every other intercepted call.
func (f *FaultInjector) ReconcileMates(from string, views []cosched.MateView) ([]cosched.MateView, error) {
	if err := f.intercept(); err != nil {
		return nil, err
	}
	r, ok := f.inner.(cosched.Reconciler)
	if !ok {
		return nil, fmt.Errorf("proto: inner peer %T does not support reconciliation", f.inner)
	}
	return r.ReconcileMates(from, views)
}

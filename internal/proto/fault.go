package proto

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/sim"
)

// ErrInjected is the error surfaced by a FaultInjector on a failed call.
var ErrInjected = errors.New("proto: injected fault")

// CallDirective tells a FaultInjector what to do with one intercepted
// call. The zero value forwards the call untouched.
type CallDirective struct {
	// Delay sleeps before forwarding (slow link).
	Delay time.Duration
	// Drop invokes the injector's dropper (WithDrops) so the forwarded
	// call hits a dead connection.
	Drop bool
	// Duplicate forwards the call a second time after the first and
	// discards the duplicate's result — at-least-once delivery; the peer
	// must tolerate the repeat without corrupting state.
	Duplicate bool
	// Fail fails the call outright with ErrInjected (one-way partition:
	// only this direction's injector is scripted).
	Fail bool
}

// CallScript supplies a scheduled directive per intercepted call, in call
// order — the deterministic, replayable alternative to the probabilistic
// With* modes (internal/faultplan implements it from a seeded plan).
// NextCall is invoked under the injector's lock, exactly once per call.
type CallScript interface {
	NextCall() CallDirective
}

// FaultInjector wraps a Peer and injects a deterministic, seeded stream of
// chaos — the middleware used to exercise Algorithm 1's fault-tolerance
// path ("status unknown ⇒ start normally") under partial failures, without
// killing the peer entirely. Three independent modes compose per call, in
// a fixed order so the stream stays reproducible (same seed and call
// sequence ⇒ same chaos):
//
//  1. latency (WithLatency): sleep before forwarding, simulating a slow
//     network — only meaningful on the live/wire path, where it exercises
//     per-call deadline budgets;
//  2. connection drop (WithDrops): invoke a caller-supplied dropper
//     (typically peerlink.Link.BreakConn or a conn.Close) before
//     forwarding, so the forwarded call hits a dead connection;
//  3. injected failure (the NewFaultInjector rate): fail the call outright
//     with ErrInjected.
//
// A scheduled CallScript (WithScript) composes on top: its directive is
// consulted first and merged with the probabilistic draws, which happen in
// the same fixed order whether or not a script is present, so rate-only
// injectors reproduce their historical streams exactly.
//
// Safe for concurrent use once configured: live daemons call peers from
// several goroutines. Configuration (WithLatency, WithDrops, WithScript)
// must finish before the first call.
type FaultInjector struct {
	inner cosched.Peer
	// rate is the failure probability per call, in [0, 1].
	rate float64
	// latencyRate/latency: injected-delay probability and duration.
	latencyRate float64
	latency     time.Duration
	// dropRate/dropper: connection-drop probability and the hook that cuts
	// the wire.
	dropRate float64
	dropper  func()
	// script, if set, supplies one scheduled directive per call.
	script CallScript

	mu sync.Mutex
	// state is a splitmix64 stream (kept local to avoid importing the
	// workload package from the protocol layer).
	state uint64

	calls      int
	failed     int
	delayed    int
	dropped    int
	duplicated int
}

// NewFaultInjector wraps inner, failing each call with the given
// probability. Rates outside [0, 1] are clamped.
func NewFaultInjector(inner cosched.Peer, rate float64, seed uint64) *FaultInjector {
	return &FaultInjector{inner: inner, rate: clampRate(rate), state: seed}
}

func clampRate(r float64) float64 {
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// WithLatency adds injected latency: each call sleeps for d with the given
// probability before being forwarded. Returns f for chaining. Configure
// before the first call.
func (f *FaultInjector) WithLatency(rate float64, d time.Duration) *FaultInjector {
	f.latencyRate = clampRate(rate)
	f.latency = d
	return f
}

// WithDrops adds connection drops: with the given probability, dropper is
// invoked (cutting the underlying connection) before the call is
// forwarded, so the forwarded call exercises the dead-conn path. Returns f
// for chaining. Configure before the first call.
func (f *FaultInjector) WithDrops(rate float64, dropper func()) *FaultInjector {
	f.dropRate = clampRate(rate)
	f.dropper = dropper
	return f
}

// WithScript adds a scheduled fault script: every call consults
// script.NextCall and merges the directive with the probabilistic modes.
// A Drop directive requires a dropper (set via WithDrops; the drop *rate*
// may be zero). Returns f for chaining. Configure before the first call.
func (f *FaultInjector) WithScript(script CallScript) *FaultInjector {
	f.script = script
	return f
}

// Calls returns the number of intercepted calls.
func (f *FaultInjector) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Failed returns how many calls were failed outright.
func (f *FaultInjector) Failed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}

// Delayed returns how many calls had latency injected.
func (f *FaultInjector) Delayed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delayed
}

// Dropped returns how many calls had the connection cut under them.
func (f *FaultInjector) Dropped() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Duplicated returns how many calls were delivered twice.
func (f *FaultInjector) Duplicated() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.duplicated
}

// next draws a uniform value in [0, 1). Callers hold f.mu.
func (f *FaultInjector) next() float64 {
	f.state += 0x9e3779b97f4a7c15
	z := f.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// outcome is intercept's decision for one call: an error to surface
// without forwarding, or a duplicate-delivery flag the wrapper methods
// honor after the first forward.
type outcome struct {
	err error
	dup bool
}

// intercept applies the configured chaos to one call: the scheduled
// script's directive (if any) merged with the probabilistic modes —
// latency, then a connection drop, then an injected failure. Draws happen
// in a fixed order under the lock (and only for enabled modes, so
// rate-only injectors reproduce the exact historical stream); the sleep
// and the drop run outside it.
func (f *FaultInjector) intercept() outcome {
	f.mu.Lock()
	f.calls++
	var d CallDirective
	if f.script != nil {
		d = f.script.NextCall()
	}
	if f.latencyRate > 0 && f.next() < f.latencyRate && f.latency > d.Delay {
		d.Delay = f.latency
	}
	if f.dropRate > 0 && f.next() < f.dropRate {
		d.Drop = true
	}
	if f.rate > 0 && f.next() < f.rate {
		d.Fail = true
	}
	if d.Delay > 0 {
		f.delayed++
	}
	drop := d.Drop && f.dropper != nil
	if drop {
		f.dropped++
	}
	var err error
	if d.Fail {
		f.failed++
		err = fmt.Errorf("%w (call %d)", ErrInjected, f.calls)
	}
	dup := d.Duplicate && err == nil // a failed call never reached the peer, so nothing to duplicate
	if dup {
		f.duplicated++
	}
	f.mu.Unlock()
	if d.Delay > 0 {
		//simlint:allow R2 injected wire latency for the live chaos harness; the sim-pure harnesses configure no latency
		time.Sleep(d.Delay)
	}
	if drop {
		f.dropper()
	}
	return outcome{err: err, dup: dup}
}

var _ cosched.Peer = (*FaultInjector)(nil)

// PeerName implements cosched.Peer.
func (f *FaultInjector) PeerName() string { return f.inner.PeerName() }

// GetMateJob implements cosched.Peer.
func (f *FaultInjector) GetMateJob(id job.ID) (bool, error) {
	o := f.intercept()
	if o.err != nil {
		return false, o.err
	}
	known, err := f.inner.GetMateJob(id)
	if o.dup {
		f.inner.GetMateJob(id) // duplicate delivery: response discarded
	}
	return known, err
}

// GetMateStatus implements cosched.Peer.
func (f *FaultInjector) GetMateStatus(id job.ID) (cosched.MateStatus, error) {
	o := f.intercept()
	if o.err != nil {
		return cosched.StatusUnknown, o.err
	}
	st, err := f.inner.GetMateStatus(id)
	if o.dup {
		f.inner.GetMateStatus(id) // duplicate delivery: response discarded
	}
	return st, err
}

// CanStartMate implements cosched.Peer.
func (f *FaultInjector) CanStartMate(id job.ID) (bool, error) {
	o := f.intercept()
	if o.err != nil {
		return false, o.err
	}
	ok, err := f.inner.CanStartMate(id)
	if o.dup {
		f.inner.CanStartMate(id) // duplicate delivery: response discarded
	}
	return ok, err
}

// TryStartMate implements cosched.Peer.
func (f *FaultInjector) TryStartMate(id job.ID) (bool, error) {
	o := f.intercept()
	if o.err != nil {
		return false, o.err
	}
	ok, err := f.inner.TryStartMate(id)
	if o.dup {
		// At-least-once delivery of a state-changing request: the repeat
		// must be absorbed (an already-running mate reports started
		// without re-starting), which is exactly what the chaos campaign
		// verifies.
		f.inner.TryStartMate(id)
	}
	return ok, err
}

// StartMate implements cosched.Peer.
func (f *FaultInjector) StartMate(id job.ID) error {
	o := f.intercept()
	if o.err != nil {
		return o.err
	}
	err := f.inner.StartMate(id)
	if o.dup {
		f.inner.StartMate(id) // duplicate delivery: response discarded
	}
	return err
}

var (
	_ cosched.CoStarter  = (*FaultInjector)(nil)
	_ cosched.Reconciler = (*FaultInjector)(nil)
)

// TryStartMateAt implements cosched.CoStarter; the chaos draw is identical
// to TryStartMate's (one intercept per call), so wrapping an extension-aware
// peer leaves historical seed streams untouched. A plain-Peer inner degrades
// to the instant-free call.
func (f *FaultInjector) TryStartMateAt(id job.ID, at sim.Time) (bool, error) {
	o := f.intercept()
	if o.err != nil {
		return false, o.err
	}
	if cs, ok := f.inner.(cosched.CoStarter); ok {
		started, err := cs.TryStartMateAt(id, at)
		if o.dup {
			// The duplicate proposes the same co-start instant; a started
			// mate absorbs it as "already running".
			cs.TryStartMateAt(id, at)
		}
		return started, err
	}
	return f.inner.TryStartMate(id)
}

// StartMateAt implements cosched.CoStarter.
func (f *FaultInjector) StartMateAt(id job.ID, at sim.Time) error {
	o := f.intercept()
	if o.err != nil {
		return o.err
	}
	if cs, ok := f.inner.(cosched.CoStarter); ok {
		err := cs.StartMateAt(id, at)
		if o.dup {
			cs.StartMateAt(id, at) // duplicate delivery: response discarded
		}
		return err
	}
	return f.inner.StartMate(id)
}

// ReconcileMates implements cosched.Reconciler with one chaos draw, like
// every other intercepted call.
func (f *FaultInjector) ReconcileMates(from string, views []cosched.MateView) ([]cosched.MateView, error) {
	o := f.intercept()
	if o.err != nil {
		return nil, o.err
	}
	r, ok := f.inner.(cosched.Reconciler)
	if !ok {
		return nil, fmt.Errorf("proto: inner peer %T does not support reconciliation", f.inner)
	}
	views2, err := r.ReconcileMates(from, views)
	if o.dup {
		r.ReconcileMates(from, views) // duplicate delivery: the exchange is idempotent by contract
	}
	return views2, err
}

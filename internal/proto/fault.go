package proto

import (
	"errors"
	"fmt"

	"cosched/internal/cosched"
	"cosched/internal/job"
)

// ErrInjected is the error surfaced by a FaultInjector on a failed call.
var ErrInjected = errors.New("proto: injected fault")

// FaultInjector wraps a Peer and fails a deterministic, seeded fraction of
// calls — the middleware used to exercise Algorithm 1's fault-tolerance
// path ("status unknown ⇒ start normally") under partial failures, without
// killing the peer entirely. The failure stream is reproducible: the same
// seed and call sequence fail the same calls.
type FaultInjector struct {
	inner cosched.Peer
	// rate is the failure probability per call, in [0, 1].
	rate float64
	// state is a splitmix64 stream (kept local to avoid importing the
	// workload package from the protocol layer).
	state uint64

	calls  int
	failed int
}

// NewFaultInjector wraps inner, failing each call with the given
// probability. Rates outside [0, 1] are clamped.
func NewFaultInjector(inner cosched.Peer, rate float64, seed uint64) *FaultInjector {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &FaultInjector{inner: inner, rate: rate, state: seed}
}

// Calls returns the number of intercepted calls.
func (f *FaultInjector) Calls() int { return f.calls }

// Failed returns how many calls were failed.
func (f *FaultInjector) Failed() int { return f.failed }

// next draws a uniform value in [0, 1).
func (f *FaultInjector) next() float64 {
	f.state += 0x9e3779b97f4a7c15
	z := f.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// trip decides one call's fate.
func (f *FaultInjector) trip() error {
	f.calls++
	if f.next() < f.rate {
		f.failed++
		return fmt.Errorf("%w (call %d)", ErrInjected, f.calls)
	}
	return nil
}

var _ cosched.Peer = (*FaultInjector)(nil)

// PeerName implements cosched.Peer.
func (f *FaultInjector) PeerName() string { return f.inner.PeerName() }

// GetMateJob implements cosched.Peer.
func (f *FaultInjector) GetMateJob(id job.ID) (bool, error) {
	if err := f.trip(); err != nil {
		return false, err
	}
	return f.inner.GetMateJob(id)
}

// GetMateStatus implements cosched.Peer.
func (f *FaultInjector) GetMateStatus(id job.ID) (cosched.MateStatus, error) {
	if err := f.trip(); err != nil {
		return cosched.StatusUnknown, err
	}
	return f.inner.GetMateStatus(id)
}

// CanStartMate implements cosched.Peer.
func (f *FaultInjector) CanStartMate(id job.ID) (bool, error) {
	if err := f.trip(); err != nil {
		return false, err
	}
	return f.inner.CanStartMate(id)
}

// TryStartMate implements cosched.Peer.
func (f *FaultInjector) TryStartMate(id job.ID) (bool, error) {
	if err := f.trip(); err != nil {
		return false, err
	}
	return f.inner.TryStartMate(id)
}

// StartMate implements cosched.Peer.
func (f *FaultInjector) StartMate(id job.ID) error {
	if err := f.trip(); err != nil {
		return err
	}
	return f.inner.StartMate(id)
}

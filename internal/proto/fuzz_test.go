package proto

import (
	"bytes"
	"testing"

	"cosched/internal/job"
)

// FuzzReadFrame hardens the wire codec against corrupt or hostile peers:
// arbitrary bytes must produce an error or a parsed value — never a panic
// or an oversized allocation.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	_ = WriteFrame(&good, &Request{Seq: 1, Method: MethodPing})
	f.Add(good.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := ReadFrame(bytes.NewReader(data), &req); err != nil {
			return
		}
		// Accepted frames must re-encode.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &req); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
	})
}

// FuzzServerDispatch throws arbitrary requests at the dispatcher backed by
// a real (empty) manager stand-in: no input may panic it, and every
// response must echo the sequence number.
func FuzzServerDispatch(f *testing.F) {
	f.Add(uint64(1), MethodPing, int64(0))
	f.Add(uint64(2), MethodGetMateStatus, int64(7))
	f.Add(uint64(3), "bogus", int64(-1))
	f.Add(uint64(4), MethodTryStartMate, int64(1<<40))
	backend := newFakeBackend()
	server := NewServer(backend, nil, nil)
	f.Fuzz(func(t *testing.T, seq uint64, method string, jobID int64) {
		resp := server.dispatch(Request{Seq: seq, Method: method, JobID: job.ID(jobID)})
		if resp.Seq != seq {
			t.Fatalf("response seq %d, want %d", resp.Seq, seq)
		}
	})
}

// Package proto is the lightweight coordination protocol of Tang et al.
// (ICPP 2011) on the wire: length-prefixed JSON request/response frames
// carrying the five Peer calls (GetMateJob, GetMateStatus, CanStartMate,
// TryStartMate, StartMate) plus Ping.
//
// The protocol is deliberately minimal — the paper's argument for
// practicality is that two administratively independent resource managers
// need only these calls, with no shared configuration and no global
// submission portal. A Client implements cosched.Peer over any net.Conn
// (TCP between real daemons, net.Pipe inside tests and simulations); a
// Server dispatches requests to any cosched.Peer (normally a
// resmgr.Manager).
//
// Fault tolerance is part of the contract: any transport error or timeout
// surfaces as an error from the Peer method, which Algorithm 1 maps to
// "status unknown" and a normal (uncoordinated) job start.
package proto

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/sim"
)

// Method names carried in request frames.
const (
	MethodPing          = "ping"
	MethodGetMateJob    = "get_mate_job"
	MethodGetMateStatus = "get_mate_status"
	MethodCanStartMate  = "can_start_mate"
	MethodTryStartMate  = "try_start_mate"
	MethodStartMate     = "start_mate"
	MethodReconcile     = "reconcile_mates"
)

// MaxFrameSize bounds a frame's payload; anything larger is rejected as
// corrupt before allocation.
const MaxFrameSize = 1 << 20

// Request is one coordination call.
type Request struct {
	Seq    uint64 `json:"seq"`
	Method string `json:"method"`
	JobID  job.ID `json:"job_id,omitempty"`
	// At, when present on try_start_mate / start_mate, is the caller's
	// proposed co-start instant (cosched.CoStarter). A pointer so legacy
	// frames without the field keep plain StartMate semantics instead of
	// proposing instant 0.
	At *sim.Time `json:"at,omitempty"`
	// From and Views carry a reconcile_mates exchange: the caller's domain
	// name and its views of every shared pair.
	From  string     `json:"from,omitempty"`
	Views []MateWire `json:"views,omitempty"`
}

// Response answers a Request with the same Seq.
type Response struct {
	Seq    uint64     `json:"seq"`
	Error  string     `json:"error,omitempty"`
	Domain string     `json:"domain,omitempty"` // ping: responder's domain name
	Known  bool       `json:"known,omitempty"`  // get_mate_job
	Status string     `json:"status,omitempty"` // get_mate_status
	OK     bool       `json:"ok,omitempty"`     // can/try_start_mate
	Views  []MateWire `json:"views,omitempty"`  // reconcile_mates
}

// MateWire is one cosched.MateView on the wire; statuses travel by name so
// frames stay debuggable and independent of the enum's numeric values.
type MateWire struct {
	Local  job.ID   `json:"local"`
	Mate   job.ID   `json:"mate"`
	Status string   `json:"status"`
	Start  sim.Time `json:"start,omitempty"`
}

// ViewsToWire encodes mate views for a frame.
func ViewsToWire(vs []cosched.MateView) []MateWire {
	if len(vs) == 0 {
		return nil
	}
	out := make([]MateWire, len(vs))
	for i, v := range vs {
		out[i] = MateWire{Local: v.Local, Mate: v.Mate, Status: v.Status.String(), Start: v.Start}
	}
	return out
}

// ViewsFromWire decodes mate views from a frame. Unknown status names are
// rejected: acting on a misparsed view could release a healthy hold.
func ViewsFromWire(ws []MateWire) ([]cosched.MateView, error) {
	if len(ws) == 0 {
		return nil, nil
	}
	out := make([]cosched.MateView, len(ws))
	for i, w := range ws {
		st, err := cosched.ParseMateStatus(w.Status)
		if err != nil {
			return nil, err
		}
		out[i] = cosched.MateView{Local: w.Local, Mate: w.Mate, Status: st, Start: w.Start}
	}
	return out, nil
}

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("proto: frame exceeds MaxFrameSize")
	ErrBadMethod     = errors.New("proto: unknown method")
)

// WriteFrame writes a length-prefixed JSON encoding of v.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("proto: marshal: %w", err)
	}
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed JSON frame into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("proto: unmarshal: %w", err)
	}
	return nil
}

package proto

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"cosched/internal/cosched"
	"cosched/internal/job"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{Seq: 42, Method: MethodGetMateStatus, JobID: 7}
	if err := WriteFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB claimed length
	var out Request
	if err := ReadFrame(&buf, &out); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Request{Seq: 1, Method: MethodPing}); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-3]
	var out Request
	if err := ReadFrame(bytes.NewReader(short), &out); err == nil {
		t.Fatal("truncated frame parsed successfully")
	}
}

// fakeBackend is a scriptable Peer for server tests.
type fakeBackend struct {
	mu       sync.Mutex
	statuses map[job.ID]cosched.MateStatus
	started  map[job.ID]bool
	fail     bool
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		statuses: make(map[job.ID]cosched.MateStatus),
		started:  make(map[job.ID]bool),
	}
}

func (f *fakeBackend) PeerName() string { return "fake" }

func (f *fakeBackend) GetMateJob(id job.ID) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return false, errors.New("injected failure")
	}
	_, ok := f.statuses[id]
	return ok, nil
}

func (f *fakeBackend) GetMateStatus(id job.ID) (cosched.MateStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return cosched.StatusUnknown, errors.New("injected failure")
	}
	st, ok := f.statuses[id]
	if !ok {
		return cosched.StatusUnknown, nil
	}
	return st, nil
}

func (f *fakeBackend) CanStartMate(id job.ID) (bool, error) {
	st, err := f.GetMateStatus(id)
	return st == cosched.StatusQueuing || st == cosched.StatusHolding, err
}

func (f *fakeBackend) TryStartMate(id job.ID) (bool, error) {
	ok, err := f.CanStartMate(id)
	if err != nil || !ok {
		return false, err
	}
	f.mu.Lock()
	f.started[id] = true
	f.statuses[id] = cosched.StatusRunning
	f.mu.Unlock()
	return true, nil
}

func (f *fakeBackend) StartMate(id job.ID) error {
	ok, err := f.TryStartMate(id)
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("not startable")
	}
	return nil
}

// pipePair returns a connected client and serving backend over net.Pipe.
func pipePair(t *testing.T, backend cosched.Peer) *Client {
	t.Helper()
	server := NewServer(backend, nil, nil)
	clientEnd, serverEnd := net.Pipe()
	go server.ServeConn(serverEnd)
	t.Cleanup(func() {
		clientEnd.Close()
		server.Close()
	})
	return NewClient(clientEnd, time.Second)
}

func TestClientServerOverPipe(t *testing.T) {
	backend := newFakeBackend()
	backend.statuses[7] = cosched.StatusQueuing
	backend.statuses[8] = cosched.StatusHolding
	c := pipePair(t, backend)

	if name, err := c.Ping(); err != nil || name != "fake" {
		t.Fatalf("ping = %q, %v", name, err)
	}
	if c.PeerName() != "fake" {
		t.Fatalf("PeerName = %q after ping", c.PeerName())
	}
	if known, err := c.GetMateJob(7); err != nil || !known {
		t.Fatalf("GetMateJob(7) = %v, %v", known, err)
	}
	if known, err := c.GetMateJob(99); err != nil || known {
		t.Fatalf("GetMateJob(99) = %v, %v", known, err)
	}
	if st, err := c.GetMateStatus(8); err != nil || st != cosched.StatusHolding {
		t.Fatalf("GetMateStatus(8) = %s, %v", st, err)
	}
	if ok, err := c.CanStartMate(7); err != nil || !ok {
		t.Fatalf("CanStartMate(7) = %v, %v", ok, err)
	}
	if ok, err := c.TryStartMate(7); err != nil || !ok {
		t.Fatalf("TryStartMate(7) = %v, %v", ok, err)
	}
	if !backend.started[7] {
		t.Fatal("backend did not start job 7")
	}
	if st, _ := c.GetMateStatus(7); st != cosched.StatusRunning {
		t.Fatalf("status after start = %s, want running", st)
	}
	if err := c.StartMate(8); err != nil {
		t.Fatalf("StartMate(8): %v", err)
	}
}

func TestServerPropagatesBackendErrors(t *testing.T) {
	backend := newFakeBackend()
	backend.fail = true
	c := pipePair(t, backend)
	if _, err := c.GetMateStatus(1); err == nil {
		t.Fatal("backend error not propagated")
	}
}

func TestServerRejectsUnknownMethod(t *testing.T) {
	backend := newFakeBackend()
	server := NewServer(backend, nil, nil)
	resp := server.dispatch(Request{Seq: 5, Method: "bogus"})
	if resp.Error == "" {
		t.Fatal("unknown method accepted")
	}
	if resp.Seq != 5 {
		t.Fatalf("seq = %d, want 5", resp.Seq)
	}
}

func TestClientServerOverTCP(t *testing.T) {
	backend := newFakeBackend()
	backend.statuses[3] = cosched.StatusQueuing
	server := NewServer(backend, nil, nil)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	c, err := Dial(addr.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.PeerName() != "fake" {
		t.Fatalf("PeerName = %q, want fake (Dial pings)", c.PeerName())
	}
	ok, err := c.TryStartMate(3)
	if err != nil || !ok {
		t.Fatalf("TryStartMate over TCP = %v, %v", ok, err)
	}

	// Multiple concurrent clients against one server.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc, err := Dial(addr.String(), time.Second)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cc.Close()
			for k := 0; k < 20; k++ {
				if _, err := cc.GetMateStatus(3); err != nil {
					t.Errorf("status: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestClientTimeoutSurfacesAsError(t *testing.T) {
	// A server that never answers: the client call must fail after the
	// timeout rather than hang — the fault-tolerance contract.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			defer conn.Close()
			//simlint:allow R2 deliberately mute real server; must outlast the client's wire deadline
			time.Sleep(2 * time.Second) // never respond within timeout
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, 100*time.Millisecond)
	defer c.Close()
	//simlint:allow R2 measuring a real socket deadline, not simulation time
	start := time.Now()
	if _, err := c.GetMateStatus(1); err == nil {
		t.Fatal("call against mute server succeeded")
	}
	//simlint:allow R2 measuring a real socket deadline, not simulation time
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timeout took %v, want ~100ms", elapsed)
	}
}

func TestSequenceMismatchDetected(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	defer clientEnd.Close()
	go func() {
		defer serverEnd.Close()
		var req Request
		if err := ReadFrame(serverEnd, &req); err != nil {
			return
		}
		// Answer with the wrong sequence number.
		_ = WriteFrame(serverEnd, &Response{Seq: req.Seq + 99})
	}()
	c := NewClient(clientEnd, time.Second)
	if _, err := c.Ping(); err == nil {
		t.Fatal("mismatched sequence accepted")
	}
}

func TestFaultInjectorDeterminismAndRate(t *testing.T) {
	backend := newFakeBackend()
	backend.statuses[1] = cosched.StatusQueuing
	a := NewFaultInjector(backend, 0.3, 42)
	b := NewFaultInjector(backend, 0.3, 42)
	var patternA, patternB []bool
	for i := 0; i < 500; i++ {
		_, errA := a.GetMateStatus(1)
		_, errB := b.GetMateStatus(1)
		patternA = append(patternA, errA != nil)
		patternB = append(patternB, errB != nil)
	}
	for i := range patternA {
		if patternA[i] != patternB[i] {
			t.Fatalf("fault streams diverged at call %d", i)
		}
	}
	rate := float64(a.Failed()) / float64(a.Calls())
	if rate < 0.2 || rate > 0.4 {
		t.Fatalf("observed failure rate %.2f, want ≈0.3", rate)
	}
	for i := range patternA {
		if patternA[i] {
			if _, err := a.GetMateJob(1); err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("wrong error type: %v", err)
			}
			break
		}
	}
}

func TestFaultInjectorRateClamps(t *testing.T) {
	backend := newFakeBackend()
	never := NewFaultInjector(backend, -1, 1)
	always := NewFaultInjector(backend, 2, 1)
	for i := 0; i < 50; i++ {
		if _, err := never.GetMateJob(1); err != nil {
			t.Fatal("rate 0 injector failed a call")
		}
		if _, err := always.GetMateJob(1); err == nil {
			t.Fatal("rate 1 injector passed a call")
		}
	}
}

package proto

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"cosched/internal/cosched"
	"cosched/internal/job"
)

// TestBrokenClientFailsFastAfterTimeout pins the connection-poisoning fix:
// before it, a single timed-out call left a late response in the stream
// and every subsequent call died on "sequence mismatch" forever. Now the
// first transport failure breaks the client, and later calls fail
// instantly with ErrBrokenConn instead of consuming the stale frame.
func TestBrokenClientFailsFastAfterTimeout(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	defer clientEnd.Close()
	release := make(chan struct{})
	go func() {
		defer serverEnd.Close()
		var req Request
		if err := ReadFrame(serverEnd, &req); err != nil {
			return
		}
		<-release // answer only after the client's deadline has fired
		_ = WriteFrame(serverEnd, &Response{Seq: req.Seq, Status: "queuing"})
	}()

	c := NewClient(clientEnd, 50*time.Millisecond)
	_, err := c.GetMateStatus(1)
	if err == nil {
		t.Fatal("call against a stalled server succeeded")
	}
	if IsRemote(err) {
		t.Fatalf("timeout classified as remote: %v", err)
	}
	if !c.Broken() {
		t.Fatal("client not broken after a transport failure")
	}
	close(release) // the late response now exists; it must never be read

	// Every later call fails fast with ErrBrokenConn — not a sequence
	// mismatch against the stale frame, and without touching the conn.
	for i := 0; i < 3; i++ {
		_, err := c.GetMateStatus(1)
		if !errors.Is(err, ErrBrokenConn) {
			t.Fatalf("call %d after break: %v, want ErrBrokenConn", i, err)
		}
		if ErrorStage(err) != StageBroken {
			t.Fatalf("stage = %q, want %q", ErrorStage(err), StageBroken)
		}
	}
}

func TestRemoteErrorDoesNotBreakClient(t *testing.T) {
	backend := newFakeBackend()
	backend.fail = true
	c := pipePair(t, backend)
	for i := 0; i < 3; i++ {
		_, err := c.GetMateStatus(1)
		if !IsRemote(err) {
			t.Fatalf("backend error = %v, want RemoteError", err)
		}
	}
	if c.Broken() {
		t.Fatal("remote application errors broke the client")
	}
	// The connection still works once the backend recovers.
	backend.mu.Lock()
	backend.fail = false
	backend.mu.Unlock()
	if _, err := c.GetMateStatus(1); err != nil {
		t.Fatalf("call after backend recovery: %v", err)
	}
}

func TestErrorClassification(t *testing.T) {
	cases := []struct {
		err        error
		stage      string
		remote     bool
		mayReached bool
	}{
		{&TransportError{Stage: StageDial, Err: errors.New("refused")}, StageDial, false, false},
		{&TransportError{Stage: StageDeadline, Err: errors.New("x")}, StageDeadline, false, false},
		{&TransportError{Stage: StageWrite, Err: errors.New("x")}, StageWrite, false, false},
		{&TransportError{Stage: StageRead, Err: errors.New("x")}, StageRead, false, true},
		{&TransportError{Stage: StageBroken, Err: ErrBrokenConn}, StageBroken, false, false},
		{&RemoteError{Method: MethodStartMate, Msg: "not holding"}, "", true, true},
		{errors.New("mystery"), "", false, true},
	}
	for _, tc := range cases {
		if got := ErrorStage(tc.err); got != tc.stage {
			t.Errorf("ErrorStage(%v) = %q, want %q", tc.err, got, tc.stage)
		}
		if got := IsRemote(tc.err); got != tc.remote {
			t.Errorf("IsRemote(%v) = %v, want %v", tc.err, got, tc.remote)
		}
		if got := RequestMayHaveReached(tc.err); got != tc.mayReached {
			t.Errorf("RequestMayHaveReached(%v) = %v, want %v", tc.err, got, tc.mayReached)
		}
	}
}

// TestFaultInjectorConcurrent exercises the injector from many goroutines;
// run under -race (ci.sh does) it pins the fix for the unsynchronized
// calls/failed/state mutation the injector shipped with.
func TestFaultInjectorConcurrent(t *testing.T) {
	backend := newFakeBackend()
	backend.statuses[1] = cosched.StatusQueuing
	var dropped sync.Map
	f := NewFaultInjector(backend, 0.2, 99).
		WithLatency(0.1, time.Microsecond).
		WithDrops(0.1, func() { dropped.Store("hit", true) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 3 {
				case 0:
					f.GetMateStatus(1)
				case 1:
					f.GetMateJob(job.ID(i))
				case 2:
					f.Calls()
					f.Failed()
					f.Delayed()
					f.Dropped()
				}
			}
		}()
	}
	wg.Wait()
	calls := f.Calls()
	if want := 8 * 200 * 2 / 3; calls < want {
		t.Fatalf("calls = %d, want ≥ %d", calls, want)
	}
	if f.Failed() == 0 || f.Delayed() == 0 || f.Dropped() == 0 {
		t.Fatalf("chaos counters = fail %d, delay %d, drop %d; want all > 0",
			f.Failed(), f.Delayed(), f.Dropped())
	}
}

func TestFaultInjectorLatencyMode(t *testing.T) {
	backend := newFakeBackend()
	backend.statuses[1] = cosched.StatusQueuing
	const d = 20 * time.Millisecond
	f := NewFaultInjector(backend, 0, 1).WithLatency(1, d)
	//simlint:allow R2 measuring real injected wire latency, not simulation time
	start := time.Now()
	if _, err := f.GetMateStatus(1); err != nil {
		t.Fatal(err)
	}
	//simlint:allow R2 measuring real injected wire latency, not simulation time
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("rate-1 latency injector took %v, want ≥ %v", elapsed, d)
	}
	if f.Delayed() != 1 || f.Failed() != 0 {
		t.Fatalf("delayed = %d, failed = %d", f.Delayed(), f.Failed())
	}
}

func TestFaultInjectorDropMode(t *testing.T) {
	backend := newFakeBackend()
	backend.statuses[1] = cosched.StatusQueuing
	var drops int
	f := NewFaultInjector(backend, 0, 1).WithDrops(1, func() { drops++ })
	for i := 0; i < 5; i++ {
		// Drops cut the wire but do not fail the forwarded call themselves.
		if _, err := f.GetMateStatus(1); err != nil {
			t.Fatal(err)
		}
	}
	if drops != 5 || f.Dropped() != 5 {
		t.Fatalf("dropper ran %d times, Dropped() = %d; want 5", drops, f.Dropped())
	}
}

// TestFaultInjectorModeDeterminism: with all three modes enabled, two
// injectors with the same seed produce identical chaos streams.
func TestFaultInjectorModeDeterminism(t *testing.T) {
	backend := newFakeBackend()
	backend.statuses[1] = cosched.StatusQueuing
	mk := func() *FaultInjector {
		return NewFaultInjector(backend, 0.3, 7).
			WithLatency(0.2, 0).
			WithDrops(0.2, func() {})
	}
	a, b := mk(), mk()
	for i := 0; i < 500; i++ {
		a.GetMateStatus(1)
		b.GetMateStatus(1)
	}
	if a.Failed() != b.Failed() || a.Delayed() != b.Delayed() || a.Dropped() != b.Dropped() {
		t.Fatalf("streams diverged: a = (%d, %d, %d), b = (%d, %d, %d)",
			a.Failed(), a.Delayed(), a.Dropped(), b.Failed(), b.Delayed(), b.Dropped())
	}
}

// blockingBackend parks GetMateStatus until released, so tests can hold a
// handler in flight while racing Server.Close against it.
type blockingBackend struct {
	entered chan struct{}
	release chan struct{}
}

func (b *blockingBackend) PeerName() string                  { return "blocking" }
func (b *blockingBackend) GetMateJob(job.ID) (bool, error)   { return true, nil }
func (b *blockingBackend) CanStartMate(job.ID) (bool, error) { return true, nil }
func (b *blockingBackend) TryStartMate(job.ID) (bool, error) { return true, nil }
func (b *blockingBackend) StartMate(job.ID) error            { return nil }

func (b *blockingBackend) GetMateStatus(job.ID) (cosched.MateStatus, error) {
	b.entered <- struct{}{}
	<-b.release
	return cosched.StatusQueuing, nil
}

// TestServerCloseRacesInFlightHandler closes the server while a handler is
// parked inside the backend and a client is blocked mid-call. Close must
// cut the connection, drain the handler, and leave no goroutines behind;
// the client must surface a clean transport error (the conn died), not a
// hang or a garbled frame.
func TestServerCloseRacesInFlightHandler(t *testing.T) {
	before := runtime.NumGoroutine()

	bb := &blockingBackend{entered: make(chan struct{}), release: make(chan struct{})}
	srv := NewServer(bb, nil, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	callErr := make(chan error, 1)
	go func() {
		_, err := c.GetMateStatus(1)
		callErr <- err
	}()
	<-bb.entered // the handler is now parked inside the backend

	closeDone := make(chan struct{})
	go func() {
		srv.Close() // races the in-flight handler; blocks until it drains
		close(closeDone)
	}()
	select {
	case <-closeDone:
		t.Fatal("Close returned while a handler was still in the backend")
	//simlint:allow R2 bounding a real shutdown race; no simulation clock in this test
	case <-time.After(50 * time.Millisecond):
	}
	close(bb.release) // let the handler finish; its write hits a dead conn

	select {
	case <-closeDone:
	//simlint:allow R2 bounding a real shutdown race; no simulation clock in this test
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the handler drained")
	}
	select {
	case err := <-callErr:
		if err == nil {
			t.Fatal("mid-call client survived server shutdown")
		}
		if IsRemote(err) {
			t.Fatalf("shutdown surfaced as remote error: %v", err)
		}
		if !c.Broken() {
			t.Fatal("client not broken after its server died mid-call")
		}
	//simlint:allow R2 bounding a real shutdown race; no simulation clock in this test
	case <-time.After(5 * time.Second):
		t.Fatal("client call hung across server shutdown")
	}

	// New connections are refused: the accept loop is gone.
	if _, err := Dial(addr.String(), 200*time.Millisecond); err == nil {
		t.Fatal("dial succeeded after Close")
	}

	// No goroutine leak: everything the server spawned has exited.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before+2 { // +2: this test's own helpers may linger briefly
			break
		}
		if i > 200 {
			t.Fatalf("goroutines: %d before, %d after shutdown", before, runtime.NumGoroutine())
		}
		//simlint:allow R2 polling real goroutine teardown after a TCP shutdown
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerCloseIdleClient: a connected but idle client's next call after
// Close fails cleanly (the server closed the conn under it).
func TestServerCloseIdleClient(t *testing.T) {
	backend := newFakeBackend()
	backend.statuses[1] = cosched.StatusQueuing
	srv := NewServer(backend, nil, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := c.GetMateStatus(1); err == nil {
		t.Fatal("call on a server-closed conn succeeded")
	} else if IsRemote(err) {
		t.Fatalf("conn teardown surfaced as remote error: %v", err)
	}
	if !c.Broken() {
		t.Fatal("client not broken after server-side close")
	}
}

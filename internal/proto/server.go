package proto

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"cosched/internal/cosched"
)

// Server exposes a cosched.Peer (normally a resmgr.Manager) to remote
// domains. Each connection is served by its own goroutine; backend access
// is serialized through an optional sync.Locker so the single-threaded
// Manager stays safe under the live daemon's concurrency.
type Server struct {
	backend cosched.Peer
	lock    sync.Locker
	logger  *log.Logger

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps backend. lock may be nil when the caller guarantees
// single-threaded access (e.g. net.Pipe peers inside one simulation
// goroutine never run concurrently with the engine). logger may be nil.
func NewServer(backend cosched.Peer, lock sync.Locker, logger *log.Logger) *Server {
	return &Server{
		backend: backend,
		lock:    lock,
		logger:  logger,
		conns:   make(map[net.Conn]struct{}),
	}
}

// Listen starts accepting TCP connections on addr and returns the bound
// address (useful with ":0").
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// ServeConn answers requests on conn until EOF or error. It may also be
// called directly with one end of a net.Pipe.
func (s *Server) ServeConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		var req Request
		//simlint:allow R9 a peer connection idles between requests by design; request liveness is bounded by the client's own per-call deadlines, and shutdown closes the conn to unblock this read
		if err := ReadFrame(conn, &req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && s.logger != nil {
				s.logger.Printf("proto server: read: %v", err)
			}
			return
		}
		resp := s.dispatch(req)
		if err := WriteFrame(conn, &resp); err != nil {
			if s.logger != nil {
				s.logger.Printf("proto server: write: %v", err)
			}
			return
		}
	}
}

// dispatch executes one request against the backend.
func (s *Server) dispatch(req Request) Response {
	if s.lock != nil {
		s.lock.Lock()
		defer s.lock.Unlock()
	}
	resp := Response{Seq: req.Seq}
	switch req.Method {
	case MethodPing:
		resp.Domain = s.backend.PeerName()
	case MethodGetMateJob:
		known, err := s.backend.GetMateJob(req.JobID)
		resp.Known = known
		setErr(&resp, err)
	case MethodGetMateStatus:
		st, err := s.backend.GetMateStatus(req.JobID)
		resp.Status = st.String()
		setErr(&resp, err)
	case MethodCanStartMate:
		ok, err := s.backend.CanStartMate(req.JobID)
		resp.OK = ok
		setErr(&resp, err)
	case MethodTryStartMate:
		// An At-carrying frame proposes the co-start instant; honor it when
		// the backend speaks the extension, else degrade to the plain call.
		if cs, has := s.backend.(cosched.CoStarter); has && req.At != nil {
			ok, err := cs.TryStartMateAt(req.JobID, *req.At)
			resp.OK = ok
			setErr(&resp, err)
			break
		}
		ok, err := s.backend.TryStartMate(req.JobID)
		resp.OK = ok
		setErr(&resp, err)
	case MethodStartMate:
		if cs, has := s.backend.(cosched.CoStarter); has && req.At != nil {
			setErr(&resp, cs.StartMateAt(req.JobID, *req.At))
			break
		}
		setErr(&resp, s.backend.StartMate(req.JobID))
	case MethodReconcile:
		r, has := s.backend.(cosched.Reconciler)
		if !has {
			resp.Error = "reconcile_mates: backend does not support reconciliation"
			break
		}
		views, err := ViewsFromWire(req.Views)
		if err != nil {
			setErr(&resp, err)
			break
		}
		out, err := r.ReconcileMates(req.From, views)
		resp.Views = ViewsToWire(out)
		setErr(&resp, err)
	default:
		resp.Error = fmt.Sprintf("%v: %q", ErrBadMethod, req.Method)
	}
	return resp
}

func setErr(resp *Response, err error) {
	if err != nil {
		resp.Error = err.Error()
	}
}

// Close stops the listener and all connections, then waits for the serving
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

package queues_test

import (
	"fmt"

	"cosched/internal/job"
	"cosched/internal/queues"
	"cosched/internal/sim"
)

// ExampleRouter routes jobs through Intrepid-like submission queues.
func ExampleRouter() {
	r, err := queues.NewRouter(queues.IntrepidQueues())
	if err != nil {
		panic(err)
	}
	debug := job.New(1, 512, 0, 20*sim.Minute, 30*sim.Minute)
	capability := job.New(2, 8192, 0, 6*sim.Hour, 8*sim.Hour)
	q1, _ := r.Route(debug)
	q2, _ := r.Route(capability)
	fmt.Println(q1)
	fmt.Println(q2)
	// Output:
	// prod-devel
	// prod-long
}

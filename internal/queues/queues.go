// Package queues implements named submission queues with admission
// constraints and priority adjustments, the way Cobalt partitioned
// Intrepid's workload (prod-devel, prod-short, prod-long, backfill…).
//
// A Router validates a job against its queue's constraints at submission
// and supplies a per-queue priority boost that composes with the base
// scheduling policy: the queue structure shapes *admission and priority*,
// while node allocation stays global — which is how Cobalt's queues
// behaved on a single machine.
package queues

import (
	"fmt"
	"sort"

	"cosched/internal/job"
	"cosched/internal/policy"
	"cosched/internal/sim"
)

// Spec declares one queue.
type Spec struct {
	// Name identifies the queue ("prod-short").
	Name string
	// MinNodes/MaxNodes bound admissible job sizes; 0 max = unbounded.
	MinNodes, MaxNodes int
	// MaxWalltime bounds admissible requests; 0 = unbounded.
	MaxWalltime sim.Duration
	// Priority is a multiplicative factor applied to the base policy
	// score of jobs in this queue (1.0 = neutral, 2.0 = favored).
	Priority float64
	// Default marks the queue that takes jobs matching nothing else.
	Default bool
}

// Validate checks a spec.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("queues: queue with empty name")
	case s.MinNodes < 0 || (s.MaxNodes != 0 && s.MaxNodes < s.MinNodes):
		return fmt.Errorf("queues: queue %q: bad node bounds [%d, %d]", s.Name, s.MinNodes, s.MaxNodes)
	case s.MaxWalltime < 0:
		return fmt.Errorf("queues: queue %q: negative walltime bound", s.Name)
	case s.Priority < 0:
		return fmt.Errorf("queues: queue %q: negative priority", s.Name)
	}
	return nil
}

// admits reports whether the queue accepts the job.
func (s Spec) admits(j *job.Job) bool {
	if j.Nodes < s.MinNodes {
		return false
	}
	if s.MaxNodes != 0 && j.Nodes > s.MaxNodes {
		return false
	}
	if s.MaxWalltime != 0 && j.Walltime > s.MaxWalltime {
		return false
	}
	return true
}

// Router assigns jobs to queues and scores them accordingly.
type Router struct {
	specs      []Spec
	defaultIdx int
	assignment map[job.ID]int
}

// NewRouter builds a router over the given queues. Exactly one queue may
// be marked Default; with none, unmatched jobs are rejected.
func NewRouter(specs []Spec) (*Router, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("queues: no queues declared")
	}
	r := &Router{
		specs:      append([]Spec(nil), specs...),
		defaultIdx: -1,
		assignment: make(map[job.ID]int),
	}
	seen := map[string]bool{}
	for i, s := range r.specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("queues: duplicate queue %q", s.Name)
		}
		seen[s.Name] = true
		if s.Default {
			if r.defaultIdx >= 0 {
				return nil, fmt.Errorf("queues: multiple default queues (%q and %q)",
					r.specs[r.defaultIdx].Name, s.Name)
			}
			r.defaultIdx = i
		}
	}
	return r, nil
}

// Route assigns the job to the first (declaration-order) queue that admits
// it, falling back to the default queue. It returns the queue name or an
// error when nothing admits the job.
func (r *Router) Route(j *job.Job) (string, error) {
	for i, s := range r.specs {
		if i == r.defaultIdx {
			continue // default only as fallback
		}
		if s.admits(j) {
			r.assignment[j.ID] = i
			return s.Name, nil
		}
	}
	if r.defaultIdx >= 0 && r.specs[r.defaultIdx].admits(j) {
		r.assignment[j.ID] = r.defaultIdx
		return r.specs[r.defaultIdx].Name, nil
	}
	return "", fmt.Errorf("queues: no queue admits job %d (%d nodes, %d s walltime)",
		j.ID, j.Nodes, j.Walltime)
}

// QueueOf returns the routed queue for a job, if any.
func (r *Router) QueueOf(id job.ID) (string, bool) {
	i, ok := r.assignment[id]
	if !ok {
		return "", false
	}
	return r.specs[i].Name, true
}

// Counts returns the number of routed jobs per queue, sorted by name.
func (r *Router) Counts() map[string]int {
	out := make(map[string]int, len(r.specs))
	for _, i := range r.assignment {
		out[r.specs[i].Name]++
	}
	return out
}

// Names lists the queue names in declaration order.
func (r *Router) Names() []string {
	out := make([]string, len(r.specs))
	for i, s := range r.specs {
		out[i] = s.Name
	}
	return out
}

// Policy wraps a base policy so every job's score is scaled by its queue's
// priority factor. Unrouted jobs score with factor 1.
func (r *Router) Policy(base policy.Policy) policy.Policy {
	if base == nil {
		base = policy.WFP{}
	}
	return &queuePolicy{router: r, base: base}
}

type queuePolicy struct {
	router *Router
	base   policy.Policy
}

// Name implements policy.Policy.
func (p *queuePolicy) Name() string { return p.base.Name() + "+queues" }

// Score implements policy.Policy.
func (p *queuePolicy) Score(j *job.Job, now sim.Time) float64 {
	s := p.base.Score(j, now)
	if i, ok := p.router.assignment[j.ID]; ok {
		f := p.router.specs[i].Priority
		if f > 0 {
			s *= f
		}
	}
	return s
}

// ObserveCompletion forwards usage accounting to the base policy when it
// tracks usage (fair-share under queues).
func (p *queuePolicy) ObserveCompletion(j *job.Job, now sim.Time) {
	if uo, ok := p.base.(policy.UsageObserver); ok {
		uo.ObserveCompletion(j, now)
	}
}

// IntrepidQueues returns the queue structure resembling Intrepid's
// production configuration: a favored short-debug queue, the default
// production queue, and a long-job queue with reduced priority.
func IntrepidQueues() []Spec {
	return []Spec{
		{Name: "prod-devel", MaxNodes: 2048, MaxWalltime: sim.Hour, Priority: 1.5},
		{Name: "prod-long", MinNodes: 512, MaxWalltime: 0, Priority: 0.8},
		{Name: "prod", Default: true, Priority: 1.0},
	}
}

// Summary renders per-queue routing counts.
func Summary(r *Router) string {
	counts := r.Counts()
	names := r.Names()
	sort.Strings(names)
	out := ""
	for _, n := range names {
		out += fmt.Sprintf("%s: %d jobs\n", n, counts[n])
	}
	return out
}

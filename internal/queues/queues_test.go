package queues

import (
	"strings"
	"testing"

	"cosched/internal/cluster"
	"cosched/internal/job"
	"cosched/internal/policy"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

func mkjob(id job.ID, nodes int, wall sim.Duration) *job.Job {
	return job.New(id, nodes, 0, wall, wall)
}

func TestRouterRoutesByConstraints(t *testing.T) {
	r, err := NewRouter(IntrepidQueues())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		j    *job.Job
		want string
	}{
		{mkjob(1, 512, 30*sim.Minute), "prod-devel"}, // small & short
		{mkjob(2, 4096, 30*sim.Minute), "prod-long"}, // too big for devel
		{mkjob(3, 512, 6*sim.Hour), "prod-long"},     // too long for devel
		{mkjob(4, 16, 6*sim.Hour), "prod"},           // below prod-long's min → default
	}
	for _, c := range cases {
		got, err := r.Route(c.j)
		if err != nil {
			t.Fatalf("route %v: %v", c.j, err)
		}
		if got != c.want {
			t.Errorf("job %d routed to %q, want %q", c.j.ID, got, c.want)
		}
		if q, ok := r.QueueOf(c.j.ID); !ok || q != c.want {
			t.Errorf("QueueOf(%d) = %q, %v", c.j.ID, q, ok)
		}
	}
	counts := r.Counts()
	if counts["prod-long"] != 2 || counts["prod-devel"] != 1 || counts["prod"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if !strings.Contains(Summary(r), "prod-devel: 1 jobs") {
		t.Fatalf("summary:\n%s", Summary(r))
	}
}

func TestRouterRejectsWhenNothingAdmits(t *testing.T) {
	r, err := NewRouter([]Spec{{Name: "tiny", MaxNodes: 8, Priority: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route(mkjob(1, 64, sim.Hour)); err == nil {
		t.Fatal("inadmissible job routed")
	}
}

func TestRouterValidation(t *testing.T) {
	bad := [][]Spec{
		nil,
		{{Name: ""}},
		{{Name: "a"}, {Name: "a"}},
		{{Name: "a", Default: true}, {Name: "b", Default: true}},
		{{Name: "a", MinNodes: 10, MaxNodes: 5}},
		{{Name: "a", Priority: -1}},
	}
	for i, specs := range bad {
		if _, err := NewRouter(specs); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestQueuePolicyScalesScores(t *testing.T) {
	r, err := NewRouter([]Spec{
		{Name: "fast", MaxNodes: 64, Priority: 2.0},
		{Name: "slow", Default: true, Priority: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	fast := mkjob(1, 32, sim.Hour)
	slow := mkjob(2, 128, sim.Hour)
	if _, err := r.Route(fast); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route(slow); err != nil {
		t.Fatal(err)
	}
	p := r.Policy(policy.WFP{})
	now := sim.Time(30 * sim.Minute)
	base := policy.WFP{}
	if got, want := p.Score(fast, now), 2.0*base.Score(fast, now); got != want {
		t.Fatalf("fast score = %g, want %g", got, want)
	}
	if got, want := p.Score(slow, now), 0.5*base.Score(slow, now); got != want {
		t.Fatalf("slow score = %g, want %g", got, want)
	}
	// Unrouted jobs pass through unscaled.
	other := mkjob(3, 8, sim.Hour)
	if got, want := p.Score(other, now), base.Score(other, now); got != want {
		t.Fatalf("unrouted score = %g, want %g", got, want)
	}
	if !strings.Contains(p.Name(), "+queues") {
		t.Fatalf("policy name = %q", p.Name())
	}
}

func TestQueuePolicyForwardsUsage(t *testing.T) {
	r, _ := NewRouter([]Spec{{Name: "q", Default: true, Priority: 1}})
	fs := policy.NewFairShare(policy.WFP{}, sim.Day)
	p := r.Policy(fs)
	uo, ok := p.(policy.UsageObserver)
	if !ok {
		t.Fatal("queue policy does not forward usage observations")
	}
	j := mkjob(1, 10, sim.Hour)
	j.User = 5
	uo.ObserveCompletion(j, 0)
	if fs.Usage(5, 0) == 0 {
		t.Fatal("usage not forwarded to fair-share base")
	}
}

func TestQueuesDriveSchedulingPriority(t *testing.T) {
	// Two identical jobs, one in a favored queue: the favored one starts
	// first when both contend for the same nodes.
	r, err := NewRouter([]Spec{
		{Name: "vip", MaxNodes: 64, Priority: 10},
		{Name: "std", Default: true, Priority: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	m := resmgr.New(eng, resmgr.Options{
		Name:   "q",
		Pool:   cluster.New("q", 64),
		Policy: r.Policy(policy.WFP{}),
	})
	vip := mkjob(1, 64, sim.Hour)
	std := mkjob(2, 128, sim.Hour)
	// Route, then submit both at t=1 (same instant, same WFP base).
	if _, err := r.Route(vip); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route(std); err != nil {
		t.Fatal(err)
	}
	// std exceeds the machine; size it down after routing to keep the
	// contention equal.
	std.Nodes = 64
	vip.SubmitTime, std.SubmitTime = 1, 1
	if err := m.SubmitAt(std); err != nil { // submitted first: FCFS would favor it
		t.Fatal(err)
	}
	if err := m.SubmitAt(vip); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !(vip.StartTime < std.StartTime) {
		t.Fatalf("vip started at %d, std at %d — queue priority ignored", vip.StartTime, std.StartTime)
	}
}

// Package reserve implements the advance co-reservation baseline the paper
// compares coscheduling against (§III: HARC, GARA, GUR). Every job —
// paired or not — is planned onto a node-availability timeline at
// submission: the scheduler finds the earliest feasible start for its
// walltime-sized window and commits a reservation (conservative
// backfilling semantics). An associated pair is committed at the earliest
// *common* instant feasible on both machines.
//
// The paper's argument, which internal/experiments quantifies, is that
// reservations fragment the machines: walltime-sized windows pin capacity
// that actual runtimes don't use, so regular jobs wait longer than under
// coscheduling even though pairs start promptly.
package reserve

import (
	"fmt"
	"sort"

	"cosched/internal/job"
	"cosched/internal/metrics"
	"cosched/internal/profile"
	"cosched/internal/sim"
)

// DomainConfig describes one machine in the co-reservation system.
type DomainConfig struct {
	Name  string
	Nodes int
	Trace []*job.Job
}

// Options configures a co-reservation simulation.
type Options struct {
	Domains []DomainConfig
}

// Result summarizes a run.
type Result struct {
	Reports  map[string]metrics.DomainReport
	Makespan sim.Time
	// PairLatency summarizes, in minutes, the gap between a pair's later
	// submission and its reserved common start.
	PairLatency metrics.Summary
	// StuckJobs counts jobs that never received a feasible reservation
	// (should be zero unless a job exceeds its machine).
	StuckJobs int
	// CoStartViolations counts pairs whose halves started at different
	// instants (must be zero: reservations are made atomically).
	CoStartViolations int
}

// pairKey identifies a pair by its lexicographically first (domain, id).
type pairKey struct {
	domain string
	id     job.ID
}

// Sim is a configured co-reservation simulation.
type Sim struct {
	eng      *sim.Engine
	names    []string
	lines    map[string]*profile.Timeline
	traces   map[string][]*job.Job
	byID     map[string]map[job.ID]*job.Job
	commitOf map[*job.Job]int64

	// pending holds the first-arrived half of each pair until its mate
	// arrives.
	pending map[pairKey]*job.Job

	pairLatencies []float64
	stuck         int
}

// New builds the simulation and schedules all submissions.
func New(opt Options) (*Sim, error) {
	if len(opt.Domains) == 0 {
		return nil, fmt.Errorf("reserve: need at least one domain")
	}
	s := &Sim{
		eng:      sim.NewEngine(),
		lines:    make(map[string]*profile.Timeline),
		traces:   make(map[string][]*job.Job),
		byID:     make(map[string]map[job.ID]*job.Job),
		commitOf: make(map[*job.Job]int64),
		pending:  make(map[pairKey]*job.Job),
	}
	for _, dc := range opt.Domains {
		if dc.Name == "" {
			return nil, fmt.Errorf("reserve: domain with empty name")
		}
		if _, dup := s.lines[dc.Name]; dup {
			return nil, fmt.Errorf("reserve: duplicate domain %q", dc.Name)
		}
		s.names = append(s.names, dc.Name)
		s.lines[dc.Name] = profile.New(dc.Nodes)
		s.traces[dc.Name] = dc.Trace
		ids := make(map[job.ID]*job.Job, len(dc.Trace))
		for _, j := range dc.Trace {
			if err := j.Validate(); err != nil {
				return nil, fmt.Errorf("reserve: domain %q: %w", dc.Name, err)
			}
			if j.Nodes > dc.Nodes {
				return nil, fmt.Errorf("reserve: domain %q: job %d needs %d of %d nodes",
					dc.Name, j.ID, j.Nodes, dc.Nodes)
			}
			if _, dup := ids[j.ID]; dup {
				return nil, fmt.Errorf("reserve: domain %q: duplicate job %d", dc.Name, j.ID)
			}
			ids[j.ID] = j
		}
		s.byID[dc.Name] = ids
	}
	for _, name := range s.names {
		for _, j := range s.traces[name] {
			name, j := name, j
			if _, err := s.eng.At(j.SubmitTime, sim.PrioritySubmit, func(now sim.Time) {
				s.submit(name, j, now)
			}); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// submit plans a newly arrived job.
func (s *Sim) submit(domain string, j *job.Job, now sim.Time) {
	if err := j.Advance(job.Queued); err != nil {
		panic(fmt.Sprintf("reserve: submit: %v", err))
	}
	if !j.Paired() {
		s.reserveSingle(domain, j, now)
		return
	}
	// Pair handling (2-way; the baseline comparator mirrors the paper's
	// co-reservation systems, which coordinate two machines).
	mate := j.Mates[0]
	key := canonicalKey(domain, j.ID, mate.Domain, mate.Job)
	if first, ok := s.pending[key]; ok {
		delete(s.pending, key)
		firstDomain := mate.Domain // the earlier half lives on the mate's domain
		s.reservePair(firstDomain, first, domain, j, now)
		return
	}
	s.pending[key] = j
}

// reserveSingle commits an unpaired job at its earliest feasible start.
func (s *Sim) reserveSingle(domain string, j *job.Job, now sim.Time) {
	line := s.lines[domain]
	start := line.EarliestStart(now, j.Walltime, j.Nodes)
	if start == profile.Infinity {
		s.stuck++
		return
	}
	id, err := line.Commit(start, j.Walltime, j.Nodes)
	if err != nil {
		panic(fmt.Sprintf("reserve: single commit: %v", err))
	}
	s.commitOf[j] = id
	s.scheduleRun(domain, j, start)
}

// reservePair finds the earliest common start feasible on both machines
// and commits both halves atomically.
func (s *Sim) reservePair(domA string, ja *job.Job, domB string, jb *job.Job, now sim.Time) {
	la, lb := s.lines[domA], s.lines[domB]
	t := now
	for iter := 0; iter < 10000; iter++ {
		ta := la.EarliestStart(t, ja.Walltime, ja.Nodes)
		tb := lb.EarliestStart(t, jb.Walltime, jb.Nodes)
		if ta == profile.Infinity || tb == profile.Infinity {
			s.stuck += 2
			return
		}
		next := ta
		if tb > next {
			next = tb
		}
		if la.CanCommit(next, ja.Walltime, ja.Nodes) && lb.CanCommit(next, jb.Walltime, jb.Nodes) {
			ida, err := la.Commit(next, ja.Walltime, ja.Nodes)
			if err != nil {
				panic(fmt.Sprintf("reserve: pair commit A: %v", err))
			}
			idb, err := lb.Commit(next, jb.Walltime, jb.Nodes)
			if err != nil {
				panic(fmt.Sprintf("reserve: pair commit B: %v", err))
			}
			s.commitOf[ja], s.commitOf[jb] = ida, idb
			s.scheduleRun(domA, ja, next)
			s.scheduleRun(domB, jb, next)
			s.pairLatencies = append(s.pairLatencies, float64(next-now)/60)
			return
		}
		if next == t {
			// Both said t is the earliest yet one cannot commit: step past
			// the blocking boundary by retrying strictly later.
			next++
		}
		t = next
	}
	s.stuck += 2
}

// scheduleRun arms the start and completion events for a committed job.
func (s *Sim) scheduleRun(domain string, j *job.Job, start sim.Time) {
	if _, err := s.eng.At(start, sim.PrioritySchedule, func(now sim.Time) {
		j.MarkReady(now)
		if err := j.Advance(job.Running); err != nil {
			panic(fmt.Sprintf("reserve: start: %v", err))
		}
		j.StartTime = now
	}); err != nil {
		panic(fmt.Sprintf("reserve: schedule start: %v", err))
	}
	end := start + j.Runtime
	if _, err := s.eng.At(end, sim.PriorityEnd, func(now sim.Time) {
		if err := j.Advance(job.Completed); err != nil {
			panic(fmt.Sprintf("reserve: end: %v", err))
		}
		j.EndTime = now
		// Free the unused walltime tail for later arrivals.
		line := s.lines[domain]
		if id, ok := s.commitOf[j]; ok {
			if err := line.TruncateAt(id, now); err != nil {
				panic(fmt.Sprintf("reserve: truncate: %v", err))
			}
		}
		line.GC(now)
	}); err != nil {
		panic(fmt.Sprintf("reserve: schedule end: %v", err))
	}
}

// Run executes to completion and collects results.
func (s *Sim) Run() *Result {
	s.eng.Run()
	res := &Result{
		Reports:     make(map[string]metrics.DomainReport),
		Makespan:    s.eng.Now(),
		PairLatency: metrics.Summarize(s.pairLatencies),
		StuckJobs:   s.stuck + len(s.pending), // a pending half whose mate never arrived
	}
	for _, name := range s.names {
		res.Reports[name] = metrics.Collect(name, s.traces[name], s.lines[name].Total(), res.Makespan)
	}
	// Verify the co-start invariant.
	for _, name := range s.names {
		for _, j := range s.traces[name] {
			if !j.Paired() || j.State != job.Completed {
				continue
			}
			for _, m := range j.Mates {
				if name > m.Domain {
					continue
				}
				mate, ok := s.byID[m.Domain][m.Job]
				if ok && mate.State == job.Completed && mate.StartTime != j.StartTime {
					res.CoStartViolations++
				}
			}
		}
	}
	return res
}

// canonicalKey orders the pair's two (domain, id) halves deterministically.
func canonicalKey(domA string, idA job.ID, domB string, idB job.ID) pairKey {
	ka := pairKey{domA, idA}
	kb := pairKey{domB, idB}
	if less(ka, kb) {
		return ka
	}
	return kb
}

func less(a, b pairKey) bool {
	if a.domain != b.domain {
		return sort.StringsAreSorted([]string{a.domain, b.domain})
	}
	return a.id < b.id
}

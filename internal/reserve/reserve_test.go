package reserve

import (
	"testing"

	"cosched/internal/job"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

func TestSingleJobReservedImmediately(t *testing.T) {
	j := job.New(1, 50, 10, 600, 900)
	s, err := New(Options{Domains: []DomainConfig{
		{Name: "a", Nodes: 100, Trace: []*job.Job{j}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if j.State != job.Completed || j.StartTime != 10 || j.EndTime != 610 {
		t.Fatalf("job: %s start=%d end=%d", j.State, j.StartTime, j.EndTime)
	}
	if res.StuckJobs != 0 {
		t.Fatalf("stuck = %d", res.StuckJobs)
	}
}

func TestReservationsQueueByWalltime(t *testing.T) {
	// Conservative semantics: the second job is planned after the FIRST
	// job's WALLTIME window even though the runtime is shorter... until
	// early completion truncates the reservation — but planning happened
	// at submit, so the reservation stands.
	j1 := job.New(1, 100, 0, 600, 1000) // walltime 1000, runs 600
	j2 := job.New(2, 100, 5, 600, 1000)
	s, err := New(Options{Domains: []DomainConfig{
		{Name: "a", Nodes: 100, Trace: []*job.Job{j1, j2}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if j2.StartTime != 1000 {
		t.Fatalf("j2 start = %d, want 1000 (walltime-fragmented)", j2.StartTime)
	}
	// Contrast: the queue-based resource manager would have started j2 at
	// 600 — this gap is exactly the fragmentation cost the paper cites.
}

func TestEarlyCompletionFreesTailForLaterArrivals(t *testing.T) {
	j1 := job.New(1, 100, 0, 600, 10000) // huge overestimate
	j2 := job.New(2, 100, 700, 100, 200) // arrives after j1 completed
	s, err := New(Options{Domains: []DomainConfig{
		{Name: "a", Nodes: 100, Trace: []*job.Job{j1, j2}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if j2.StartTime != 700 {
		t.Fatalf("j2 start = %d, want 700 (truncated reservation freed the machine)", j2.StartTime)
	}
}

func TestPairCoReserved(t *testing.T) {
	ja := job.New(1, 60, 0, 600, 900)
	jb := job.New(1, 8, 120, 600, 900)
	ja.Mates = []job.MateRef{{Domain: "b", Job: 1}}
	jb.Mates = []job.MateRef{{Domain: "a", Job: 1}}
	// Blockers force different earliest starts on the two machines.
	blockA := job.New(2, 100, 0, 300, 300)
	blockB := job.New(2, 10, 0, 1000, 1000)
	s, err := New(Options{Domains: []DomainConfig{
		{Name: "a", Nodes: 100, Trace: []*job.Job{ja, blockA}},
		{Name: "b", Nodes: 10, Trace: []*job.Job{jb, blockB}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.StuckJobs != 0 || res.CoStartViolations != 0 {
		t.Fatalf("stuck=%d viol=%d", res.StuckJobs, res.CoStartViolations)
	}
	if ja.StartTime != jb.StartTime {
		t.Fatalf("co-reservation mismatch: %d vs %d", ja.StartTime, jb.StartTime)
	}
	// Common start must be ≥ both blockers' holds: A free at 300, B free
	// at 1000 → common start 1000.
	if ja.StartTime != 1000 {
		t.Fatalf("pair start = %d, want 1000", ja.StartTime)
	}
	if res.PairLatency.Count != 1 {
		t.Fatalf("pair latency count = %d", res.PairLatency.Count)
	}
}

func TestPendingHalfCountsStuck(t *testing.T) {
	ja := job.New(1, 10, 0, 600, 600)
	ja.Mates = []job.MateRef{{Domain: "b", Job: 99}} // mate never arrives
	s, err := New(Options{Domains: []DomainConfig{
		{Name: "a", Nodes: 100, Trace: []*job.Job{ja}},
		{Name: "b", Nodes: 100, Trace: nil},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.StuckJobs != 1 {
		t.Fatalf("stuck = %d, want 1 (unmatched pair half)", res.StuckJobs)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	if _, err := New(Options{Domains: []DomainConfig{{Name: "", Nodes: 4}}}); err == nil {
		t.Fatal("empty name accepted")
	}
	big := job.New(1, 200, 0, 10, 10)
	if _, err := New(Options{Domains: []DomainConfig{
		{Name: "a", Nodes: 100, Trace: []*job.Job{big}},
	}}); err == nil {
		t.Fatal("oversize job accepted")
	}
	d1 := job.New(1, 1, 0, 10, 10)
	d2 := job.New(1, 1, 0, 10, 10)
	if _, err := New(Options{Domains: []DomainConfig{
		{Name: "a", Nodes: 100, Trace: []*job.Job{d1, d2}},
	}}); err == nil {
		t.Fatal("duplicate job id accepted")
	}
}

func TestWorkloadScale(t *testing.T) {
	// A realistic paired workload runs to completion with zero co-start
	// violations under co-reservation.
	spec := workload.EurekaSpec(5)
	spec.Jobs = 300
	a, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 6
	b, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	workload.PairNearest(workload.NewRNG(7), a, b, "a", "b", 60, 2*sim.Hour)
	s, err := New(Options{Domains: []DomainConfig{
		{Name: "a", Nodes: 100, Trace: a},
		{Name: "b", Nodes: 100, Trace: b},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.StuckJobs != 0 {
		t.Fatalf("stuck = %d", res.StuckJobs)
	}
	if res.CoStartViolations != 0 {
		t.Fatalf("violations = %d", res.CoStartViolations)
	}
	if res.Reports["a"].Completed != 300 || res.Reports["b"].Completed != 300 {
		t.Fatalf("completed: %d / %d", res.Reports["a"].Completed, res.Reports["b"].Completed)
	}
}

package resmgr_test

import (
	"fmt"
	"testing"

	"cosched/internal/resmgr"
	"cosched/internal/schedbench"
)

// BenchmarkIterate measures one scheduling iteration at the blocked steady
// state (every queued job too large to start or backfill) for each core and
// queue depth. The incremental core's skip-cache elides planning entirely
// here, and its steady-state path must not allocate.
func BenchmarkIterate(b *testing.B) {
	for _, core := range []resmgr.Core{resmgr.CoreReference, resmgr.CoreIncremental} {
		for _, queue := range schedbench.QueueSizes {
			b.Run(fmt.Sprintf("%s/queue%d", core, queue), func(b *testing.B) {
				eng, m, _, _ := schedbench.Steady(core, queue)
				now := eng.Now()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Iterate(now)
				}
			})
		}
	}
}

// BenchmarkIterateChurn interleaves a cancel+submit with every iteration, so
// each plan runs against a changed queue: the sorted-insert/remove index and
// cache invalidation rather than the pure skip path.
func BenchmarkIterateChurn(b *testing.B) {
	for _, core := range []resmgr.Core{resmgr.CoreReference, resmgr.CoreIncremental} {
		for _, queue := range schedbench.QueueSizes {
			b.Run(fmt.Sprintf("%s/queue%d", core, queue), func(b *testing.B) {
				eng, m, blocked, nextID := schedbench.Steady(core, queue)
				now := eng.Now()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k := i % len(blocked)
					blocked[k], nextID = schedbench.Churn(m, blocked[k], nextID)
					m.Iterate(now)
				}
			})
		}
	}
}

// TestSteadyScenarioSettles pins the shared benchmark scenario's invariants
// so the committed BENCH_sched.json numbers stay comparable across changes:
// the blocked queue never drains and the skip-cache engages on the
// incremental core.
func TestSteadyScenarioSettles(t *testing.T) {
	for _, core := range []resmgr.Core{resmgr.CoreReference, resmgr.CoreIncremental} {
		eng, m, blocked, _ := schedbench.Steady(core, 100)
		if got := m.QueueLength(); got != 100 {
			t.Fatalf("%v: queue length = %d, want 100", core, got)
		}
		for i := 0; i < 3; i++ {
			m.Iterate(eng.Now())
		}
		if got := m.QueueLength(); got != 100 {
			t.Fatalf("%v: queue drained to %d after extra iterations", core, got)
		}
		if core == resmgr.CoreIncremental && m.Skips() == 0 {
			t.Fatalf("incremental: skip-cache never engaged at steady state")
		}
		if core == resmgr.CoreReference && m.Skips() != 0 {
			t.Fatalf("reference: skip-cache engaged (%d skips) on the reference core", m.Skips())
		}
		if blocked[0].ID == blocked[1].ID {
			t.Fatalf("scenario job IDs collide")
		}
	}
}

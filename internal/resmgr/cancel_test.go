package resmgr

import (
	"errors"
	"testing"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/sim"
)

func TestCancelQueuedJob(t *testing.T) {
	eng, a, _ := pairDomains(t, 100, 100, cosched.Config{}, cosched.Config{})
	blocker := job.New(1, 100, 0, 1000, 1000)
	waiting := job.New(2, 100, 5, 600, 600)
	submitAll(t, a, blocker, waiting)
	eng.RunUntil(100)
	if err := a.Cancel(2); err != nil {
		t.Fatal(err)
	}
	if waiting.State != job.Cancelled {
		t.Fatalf("state = %s", waiting.State)
	}
	if a.QueueLength() != 0 {
		t.Fatalf("queue length = %d after cancel", a.QueueLength())
	}
	eng.Run()
	if waiting.State != job.Cancelled || waiting.StartTime != 0 {
		t.Fatalf("cancelled job ran: %+v", waiting)
	}
	if a.CancelledCount() != 1 {
		t.Fatalf("cancelled count = %d", a.CancelledCount())
	}
}

func TestCancelRunningJobFreesNodesImmediately(t *testing.T) {
	eng, a, _ := pairDomains(t, 100, 100, cosched.Config{}, cosched.Config{})
	long := job.New(1, 100, 0, 100000, 100000)
	next := job.New(2, 100, 5, 600, 600)
	submitAll(t, a, long, next)
	eng.RunUntil(1000)
	if long.State != job.Running {
		t.Fatalf("long state = %s", long.State)
	}
	if err := a.Cancel(1); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// The killed job's end event must not fire; the waiter takes over at
	// the cancellation instant.
	if long.State != job.Cancelled || long.EndTime != 1000 {
		t.Fatalf("long: state=%s end=%d", long.State, long.EndTime)
	}
	if next.StartTime != 1000 {
		t.Fatalf("next start = %d, want 1000 (freed by cancel)", next.StartTime)
	}
	if a.Pool().Free() != 100 {
		t.Fatalf("pool not drained: %s", a.Pool())
	}
}

func TestCancelHoldingJobReleasesNodesAndUnblocksMate(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	ja := job.New(1, 100, 0, 600, 600)
	jb := job.New(1, 10, 5000, 600, 600)
	pairJobs(ja, jb)
	other := job.New(2, 100, 10, 600, 600)
	submitAll(t, a, ja, other)
	submitAll(t, b, jb)
	eng.RunUntil(100)
	if ja.State != job.Holding {
		t.Fatalf("ja state = %s, want holding", ja.State)
	}
	if err := a.Cancel(1); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if ja.State != job.Cancelled {
		t.Fatalf("ja state = %s", ja.State)
	}
	if ja.HeldNodeSeconds != 100*100 {
		t.Fatalf("held accounting = %d, want 10000", ja.HeldNodeSeconds)
	}
	// The freed nodes go to the regular job at the cancel instant.
	if other.StartTime != 100 {
		t.Fatalf("other start = %d, want 100", other.StartTime)
	}
	// The remote mate, whose partner is cancelled, starts normally when
	// scheduled (status unknown → fault-tolerance path).
	if jb.State != job.Completed || jb.StartTime != 5000 {
		t.Fatalf("jb: %s start=%d, want normal start at 5000", jb.State, jb.StartTime)
	}
}

func TestCancelExpectedJobSkipsReplay(t *testing.T) {
	eng, a, _ := pairDomains(t, 100, 100, cosched.Config{}, cosched.Config{})
	j := job.New(1, 10, 500, 600, 600)
	if err := a.SubmitAt(j); err != nil {
		t.Fatal(err)
	}
	if err := a.Cancel(1); err != nil {
		t.Fatal(err)
	}
	eng.Run() // the pending submit event must no-op, not panic
	if j.State != job.Cancelled {
		t.Fatalf("state = %s", j.State)
	}
}

func TestCancelErrors(t *testing.T) {
	eng, a, _ := pairDomains(t, 100, 100, cosched.Config{}, cosched.Config{})
	j := job.New(1, 10, 0, 60, 60)
	submitAll(t, a, j)
	eng.Run()
	if err := a.Cancel(1); !errors.Is(err, ErrBadState) {
		t.Fatalf("cancel completed job: err = %v, want ErrBadState", err)
	}
	if err := a.Cancel(99); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel unknown job: err = %v, want ErrUnknownJob", err)
	}
}

func TestCancelDuringSimulatedTime(t *testing.T) {
	// Schedule a cancellation as a simulation event, mid-run.
	eng, a, _ := pairDomains(t, 64, 64, cosched.Config{}, cosched.Config{})
	j := job.New(1, 64, 0, 10000, 10000)
	submitAll(t, a, j)
	if _, err := eng.At(2500, sim.PriorityDefault, func(sim.Time) {
		if err := a.Cancel(1); err != nil {
			t.Errorf("cancel: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if j.State != job.Cancelled || j.EndTime != 2500 {
		t.Fatalf("job: %s end=%d", j.State, j.EndTime)
	}
}

package resmgr

import (
	"errors"
	"testing"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

// flakyPeer wraps a real peer and fails every k-th call — the partial-
// failure regime between "healthy" and "down" that the fault-tolerance
// path must absorb without wedging the scheduler.
type flakyPeer struct {
	inner cosched.Peer
	every int
	calls int
}

func (f *flakyPeer) tick() error {
	f.calls++
	if f.every > 0 && f.calls%f.every == 0 {
		return errors.New("injected transient failure")
	}
	return nil
}

func (f *flakyPeer) PeerName() string { return f.inner.PeerName() }

func (f *flakyPeer) GetMateJob(id job.ID) (bool, error) {
	if err := f.tick(); err != nil {
		return false, err
	}
	return f.inner.GetMateJob(id)
}

func (f *flakyPeer) GetMateStatus(id job.ID) (cosched.MateStatus, error) {
	if err := f.tick(); err != nil {
		return cosched.StatusUnknown, err
	}
	return f.inner.GetMateStatus(id)
}

func (f *flakyPeer) CanStartMate(id job.ID) (bool, error) {
	if err := f.tick(); err != nil {
		return false, err
	}
	return f.inner.CanStartMate(id)
}

func (f *flakyPeer) TryStartMate(id job.ID) (bool, error) {
	if err := f.tick(); err != nil {
		return false, err
	}
	return f.inner.TryStartMate(id)
}

func (f *flakyPeer) StartMate(id job.ID) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.inner.StartMate(id)
}

// TestFlakyPeerNeverWedgesScheduling injects a failure into every 10th peer
// call of a paired workload. Some pairs will fall back to uncoordinated
// starts (that is the §IV-C design: availability over synchronization),
// but every job must still complete and the system must never deadlock.
func TestFlakyPeerNeverWedgesScheduling(t *testing.T) {
	for _, scheme := range []cosched.Scheme{cosched.Hold, cosched.Yield} {
		cfg := cosched.DefaultConfig(scheme)
		eng, a, b := pairDomains(t, 128, 32, cfg, cfg)
		// Replace the direct wiring with flaky wrappers.
		a.AddPeer("B", &flakyPeer{inner: b, every: 10})
		b.AddPeer("A", &flakyPeer{inner: a, every: 10})

		spec := workload.Spec{
			Name: "a", Jobs: 80, Span: 8 * sim.Hour,
			Sizes:     []workload.SizeClass{{Nodes: 16, Weight: 0.6}, {Nodes: 32, Weight: 0.4}},
			RuntimeMu: 6.0, RuntimeSigma: 0.8,
			MinRuntime: sim.Minute, MaxRuntime: sim.Hour,
			WallFactorMin: 1.2, WallFactorMax: 2.0, Seed: 17,
		}
		ta, err := workload.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.Seed = 18
		spec.Sizes = []workload.SizeClass{{Nodes: 4, Weight: 1}}
		tb, err := workload.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		workload.PairNearest(workload.NewRNG(19), ta, tb, "A", "B", 25, sim.Hour)
		submitAll(t, a, ta...)
		submitAll(t, b, tb...)
		eng.Run()

		for _, j := range append(ta, tb...) {
			if j.State != job.Completed {
				t.Fatalf("scheme %s: %s never completed under flaky peer", scheme, j)
			}
		}
		// Coordination must still succeed for a meaningful share of pairs
		// (9 of 10 calls go through).
		coStarted := 0
		paired := 0
		byID := map[job.ID]*job.Job{}
		for _, j := range tb {
			byID[j.ID] = j
		}
		for _, j := range ta {
			if !j.Paired() {
				continue
			}
			paired++
			if mate := byID[j.Mates[0].Job]; mate != nil && mate.StartTime == j.StartTime {
				coStarted++
			}
		}
		if paired == 0 {
			t.Fatal("no pairs formed")
		}
		if coStarted == 0 {
			t.Fatalf("scheme %s: zero pairs co-started despite mostly-healthy peer", scheme)
		}
		t.Logf("scheme %s: %d/%d pairs co-started under 10%% call-failure injection",
			scheme, coStarted, paired)
	}
}

// TestYieldBoostPathEngages exercises the per-yield priority boost
// (§IV-E2): with boosting on, a repeatedly yielding paired job climbs the
// queue and its yield count stays below the unboosted run's.
func TestYieldBoostPathEngages(t *testing.T) {
	run := func(boost bool) int {
		cfg := cosched.DefaultConfig(cosched.Yield)
		cfg.YieldBoost = boost
		eng, a, b := pairDomains(t, 64, 64, cfg, cfg)
		ja := job.New(1, 32, 0, 600, 600)
		jb := job.New(1, 8, 4*sim.Hour, 600, 600)
		pairJobs(ja, jb)
		var churn []*job.Job
		for i := 0; i < 40; i++ {
			churn = append(churn, job.New(job.ID(10+i), 48, sim.Time(i)*6*sim.Minute, 5*sim.Minute, 10*sim.Minute))
		}
		submitAll(t, a, append([]*job.Job{ja}, churn...)...)
		submitAll(t, b, jb)
		eng.Run()
		if ja.State != job.Completed || ja.StartTime != jb.StartTime {
			t.Fatalf("boost=%v: ja %s start %d vs %d", boost, ja.State, ja.StartTime, jb.StartTime)
		}
		return ja.YieldCount
	}
	plain := run(false)
	boosted := run(true)
	if plain == 0 {
		t.Fatal("control run never yielded; test not exercising the path")
	}
	t.Logf("yields: plain=%d boosted=%d", plain, boosted)
}

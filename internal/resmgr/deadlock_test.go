package resmgr

import (
	"testing"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/sim"
)

// fig2 builds the paper's Figure 2 deadlock scenario: machine A's job a1
// holds all 6 nodes waiting for b1 (queued on B); machine B's job b2 holds
// all 6 nodes waiting for a2 (queued on A) — circular wait.
func fig2(t *testing.T, release sim.Duration) (*sim.Engine, [4]*job.Job) {
	t.Helper()
	cfg := cosched.DefaultConfig(cosched.Hold)
	cfg.ReleaseInterval = release
	eng, a, b := pairDomains(t, 6, 6, cfg, cfg)
	a1 := job.New(1, 6, 0, 600, 600)
	a2 := job.New(2, 6, 10, 600, 600)
	b2 := job.New(2, 6, 0, 600, 600)
	b1 := job.New(1, 6, 10, 600, 600)
	pairJobs(a1, b1)
	pairJobs(a2, b2)
	submitAll(t, a, a1, a2)
	submitAll(t, b, b2, b1)
	return eng, [4]*job.Job{a1, a2, b1, b2}
}

func TestHoldHoldDeadlockWithoutRelease(t *testing.T) {
	// §V-B: "Without the enhancement, deadlocks are highly likely" —
	// with release disabled the Figure 2 scenario wedges permanently:
	// the event queue drains with every job unfinished.
	eng, jobs := fig2(t, 0)
	eng.Run()
	holding, queued := 0, 0
	for _, j := range jobs {
		switch j.State {
		case job.Holding:
			holding++
		case job.Queued:
			queued++
		case job.Completed:
			t.Fatalf("job %s completed despite the deadlock", j)
		}
	}
	if holding != 2 || queued != 2 {
		t.Fatalf("holding=%d queued=%d, want 2/2 (circular wait)", holding, queued)
	}
}

func TestHoldHoldDeadlockBrokenByRelease(t *testing.T) {
	// With the 20-minute periodic release (§IV-E1) the same scenario
	// resolves: a1's release lets a2 start with its holding mate b2, and
	// the other pair follows.
	eng, jobs := fig2(t, 20*sim.Minute)
	eng.Run()
	for _, j := range jobs {
		if j.State != job.Completed {
			t.Fatalf("job %s not completed; deadlock not broken", j)
		}
	}
	a1, a2, b1, b2 := jobs[0], jobs[1], jobs[2], jobs[3]
	if a2.StartTime != b2.StartTime {
		t.Fatalf("pair2 co-start violated: %d vs %d", a2.StartTime, b2.StartTime)
	}
	if a1.StartTime != b1.StartTime {
		t.Fatalf("pair1 co-start violated: %d vs %d", a1.StartTime, b1.StartTime)
	}
	// The second pair must have started at the first release boundary.
	if a2.StartTime != 20*sim.Minute {
		t.Fatalf("pair2 started at %d, want %d (first release)", a2.StartTime, 20*sim.Minute)
	}
	// The released holder re-queued and eventually ran after the nodes
	// freed up.
	if a1.StartTime <= a2.StartTime {
		t.Fatalf("a1 start %d should follow a2 start %d", a1.StartTime, a2.StartTime)
	}
}

func TestReleaseRelocksWhenNoContention(t *testing.T) {
	// A holding job whose nodes nobody wants must re-hold after each
	// release ("Otherwise, the job will hold by the original holding job
	// again") and still co-start correctly when the mate arrives.
	cfg := cosched.DefaultConfig(cosched.Hold)
	cfg.ReleaseInterval = 10 * sim.Minute
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	ja := job.New(1, 10, 0, 600, 600)
	jb := job.New(1, 10, 3*sim.Hour, 600, 600)
	pairJobs(ja, jb)
	submitAll(t, a, ja)
	submitAll(t, b, jb)
	eng.Run()
	if ja.State != job.Completed || jb.State != job.Completed {
		t.Fatalf("states: %s / %s", ja.State, jb.State)
	}
	if ja.StartTime != jb.StartTime {
		t.Fatalf("co-start violated: %d vs %d", ja.StartTime, jb.StartTime)
	}
	// 3 hours / 10 min = 18 release boundaries, each re-holding.
	if ja.HoldCount < 10 {
		t.Fatalf("hold count = %d, want many re-holds", ja.HoldCount)
	}
	// Held accounting must cover the full 3-hour wait despite the
	// release/re-hold cycling (releases are instantaneous).
	want := int64(10) * int64(3*sim.Hour)
	if ja.HeldNodeSeconds != want {
		t.Fatalf("held node-seconds = %d, want %d", ja.HeldNodeSeconds, want)
	}
}

func TestReleasePreemptedByRegularJob(t *testing.T) {
	// "If the released nodes are preempted by other jobs, the original
	// holding job will be put in queuing status."
	cfg := cosched.DefaultConfig(cosched.Hold)
	cfg.ReleaseInterval = 10 * sim.Minute
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	ja := job.New(1, 100, 0, 600, 600) // holds the whole machine
	jb := job.New(1, 10, 2*sim.Hour, 600, 600)
	pairJobs(ja, jb)
	regular := job.New(2, 100, 60, 600, 600) // queued behind the hold
	submitAll(t, a, ja, regular)
	submitAll(t, b, jb)
	eng.Run()
	// At the first release (t=600) the regular job must grab the nodes.
	if regular.StartTime != 600 {
		t.Fatalf("regular start = %d, want 600 (preempted the released nodes)", regular.StartTime)
	}
	if ja.StartTime != jb.StartTime {
		t.Fatalf("pair still co-starts: %d vs %d", ja.StartTime, jb.StartTime)
	}
}

package resmgr_test

import (
	"fmt"

	"cosched/internal/cluster"
	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// Example walks Algorithm 1's hold path directly: domain A's job is ready
// first, holds its nodes, and the pair co-starts when B's half arrives.
func Example() {
	eng := sim.NewEngine()
	a := resmgr.New(eng, resmgr.Options{
		Name: "A", Pool: cluster.New("A", 128), Backfilling: true,
		Cosched: cosched.DefaultConfig(cosched.Hold),
	})
	b := resmgr.New(eng, resmgr.Options{
		Name: "B", Pool: cluster.New("B", 16), Backfilling: true,
		Cosched: cosched.DefaultConfig(cosched.Yield),
	})
	a.AddPeer("B", b) // a Manager is itself a cosched.Peer
	b.AddPeer("A", a)

	ja := job.New(1, 64, 0, 600, 600)
	jb := job.New(1, 8, 300, 600, 600)
	ja.Mates = []job.MateRef{{Domain: "B", Job: 1}}
	jb.Mates = []job.MateRef{{Domain: "A", Job: 1}}
	if err := a.SubmitAt(ja); err != nil {
		panic(err)
	}
	if err := b.SubmitAt(jb); err != nil {
		panic(err)
	}
	eng.Run()

	fmt.Printf("A job: held %d times, started t=%d\n", ja.HoldCount, ja.StartTime)
	fmt.Printf("B job: started t=%d\n", jb.StartTime)
	fmt.Println("co-start:", ja.StartTime == jb.StartTime)
	// Output:
	// A job: held 1 times, started t=300
	// B job: started t=300
	// co-start: true
}

package resmgr

import (
	"fmt"
	"sort"

	"cosched/internal/backfill"
	"cosched/internal/job"
	"cosched/internal/policy"
	"cosched/internal/sim"
)

// Core selects the Manager's scheduling-iteration implementation.
//
// The incremental core (the default) maintains three structures across
// iterations instead of rebuilding them inside every Iterate:
//
//   - a release timeline, kept in the planners' canonical sorted order and
//     updated on job start/completion/cancel, replacing the per-iteration
//     running-map range + sort;
//   - a queue index: O(1) membership/removal for time-varying policies, and
//     for time-invariant ones (FCFS, SJF, LargestFirst) a queue kept
//     canonically ordered by binary-search insertion so the per-iteration
//     full sort disappears;
//   - an iteration skip-cache that fingerprints every planner input and
//     skips planning when the previous iteration at the identical state
//     produced an empty plan.
//
// The reference core preserves the original allocate-and-sort path; the
// differential tests assert both cores produce byte-identical results.
type Core int

const (
	// CoreIncremental is the default: sorted timeline, queue index, and
	// skip-cache as described on Core.
	CoreIncremental Core = iota
	// CoreReference rebuilds the queue order and release list on every
	// iteration — the original implementation, kept as the behavioral
	// baseline for differential testing.
	CoreReference
)

// String returns the core's configuration name.
func (c Core) String() string {
	if c == CoreReference {
		return "reference"
	}
	return "incremental"
}

// ParseCore resolves "", "incremental", "reference".
func ParseCore(s string) (Core, bool) {
	switch s {
	case "", "incremental":
		return CoreIncremental, true
	case "reference":
		return CoreReference, true
	default:
		return CoreIncremental, false
	}
}

// iterFP fingerprints every input the planners read. Two iterations with
// equal fingerprints see identical queues (membership and order), release
// timelines, pool occupancy, and yield/boost state, so they compute
// identical plans — which lets Iterate skip planning entirely when the
// fingerprint is unchanged and the previous plan was empty.
//
// instantOnly pins the fingerprint to a single simulated instant. It is set
// whenever plan emptiness is not provably monotone in `now`: time-varying
// policy scores (WFP, FairShare), unstable estimators, the conservative
// planner's full-profile feasibility, and iterations where a same-instant
// yielder was excluded from eligibility (the exclusion lapses at the next
// instant, growing the eligible set). For time-invariant policies with
// stable estimators under EASY/none, emptiness IS monotone — the greedy
// prefix reads no clock, and a backfill candidate's now+estimate only grows
// toward the fixed shadow time — so those skips may span instants.
type iterFP struct {
	queueV      uint64
	timelineV   uint64
	yieldV      uint64
	free        int
	held        int
	instantOnly bool
	instant     sim.Time
}

// fingerprint captures the current planner-input state. excluded is how
// many same-instant yielders the eligibility filter dropped.
func (m *Manager) fingerprint(now sim.Time, excluded int) iterFP {
	fp := iterFP{
		queueV:    m.queueV,
		timelineV: m.timelineV,
		yieldV:    m.yieldV,
		free:      m.pool.Free(),
		held:      m.pool.Held(),
	}
	if !m.acrossInstant || excluded > 0 {
		fp.instantOnly = true
		fp.instant = now
	}
	return fp
}

// Skips returns how many scheduling iterations the skip-cache elided.
// Skipped iterations still count in Iterations().
func (m *Manager) Skips() uint64 { return m.skips }

// ---------------------------------------------------------------------------
// Queue index

// queueRank returns j's position in the canonically ordered queue (sorted
// mode only): the index where j sits if present, or its insertion point.
// The comparator is exactly policy.Precedes over time-invariant scores, so
// binary search and policy.Orderer's full sort agree on every permutation.
func (m *Manager) queueRank(j *job.Job) int {
	s := m.pol.Score(j, 0) // time-invariant: any instant gives the same score
	return sort.Search(len(m.queue), func(i int) bool {
		qi := m.queue[i]
		return !policy.Precedes(m.pol.Score(qi, 0), qi, s, j)
	})
}

// enqueue appends j to the queue, keeping the canonical order in sorted
// mode and the position index in indexed mode.
func (m *Manager) enqueue(j *job.Job) {
	m.queueV++
	if m.sortedQueue {
		idx := m.queueRank(j)
		m.queue = append(m.queue, nil)
		copy(m.queue[idx+1:], m.queue[idx:])
		m.queue[idx] = j
		return
	}
	if m.queuePos != nil {
		m.queuePos[j.ID] = len(m.queue)
	}
	m.queue = append(m.queue, j)
}

// removeFromQueue deletes a job from the queue. Sorted mode locates it by
// binary search and shifts (order must be preserved — it IS the schedule
// order); indexed mode looks up the position and swap-removes, which is
// safe because storage order is invisible there: every iteration
// canonicalizes through Orderer.Order before planning. The reference core
// keeps the original linear order-preserving scan.
func (m *Manager) removeFromQueue(id job.ID) {
	switch {
	case m.sortedQueue:
		idx := m.queueRank(m.jobs[id])
		if idx < len(m.queue) && m.queue[idx].ID == id {
			copy(m.queue[idx:], m.queue[idx+1:])
			m.queue[len(m.queue)-1] = nil
			m.queue = m.queue[:len(m.queue)-1]
			m.queueV++
		}
	case m.queuePos != nil:
		idx, ok := m.queuePos[id]
		if !ok {
			return
		}
		last := len(m.queue) - 1
		moved := m.queue[last]
		m.queue[idx] = moved
		m.queuePos[moved.ID] = idx
		m.queue[last] = nil
		m.queue = m.queue[:last]
		delete(m.queuePos, id)
		m.queueV++
	default:
		for i, q := range m.queue {
			if q.ID == id {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				m.queueV++
				return
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Sorted release timeline

// timelineKeyAt returns the first timeline index whose entry is >= r in the
// canonical (EndBy, Nodes) order.
func (m *Manager) timelineKeyAt(r backfill.Release) int {
	return sort.Search(len(m.timeline), func(i int) bool {
		t := m.timeline[i]
		return t.EndBy > r.EndBy || (t.EndBy == r.EndBy && t.Nodes >= r.Nodes)
	})
}

// timelineInsert adds a running job's bounded release to the sorted
// timeline: O(log R) search plus one shift.
func (m *Manager) timelineInsert(r backfill.Release) {
	idx := m.timelineKeyAt(r)
	m.timeline = append(m.timeline, backfill.Release{})
	copy(m.timeline[idx+1:], m.timeline[idx:])
	m.timeline[idx] = r
	m.timelineV++
}

// timelineRemove deletes one entry equal to r. Entries are plain values,
// so any member of an equal-(EndBy,Nodes) run is interchangeable; removal
// needs no job identity, only the endBy the runEntry recorded at insert.
func (m *Manager) timelineRemove(r backfill.Release) {
	idx := m.timelineKeyAt(r)
	if idx >= len(m.timeline) || m.timeline[idx] != r {
		panic(fmt.Sprintf("resmgr %s: timeline entry %+v missing — incremental maintenance out of sync", m.name, r))
	}
	copy(m.timeline[idx:], m.timeline[idx+1:])
	m.timeline = m.timeline[:len(m.timeline)-1]
	m.timelineV++
}

// timelineRebuild recomputes the whole timeline from the running set,
// applying the Tsafrir-style correction: a running job that has outlived
// its estimate plans with its walltime bound instead (treating it as
// "about to finish" would collapse the shadow time and let backfill starve
// the head job). Called only when the earliest entry has gone stale
// (EndBy <= now), which with a stable estimator honoring the
// estimate <= walltime contract is rare to never — the completion event at
// StartTime+Runtime <= StartTime+Walltime removes the entry first.
func (m *Manager) timelineRebuild(now sim.Time) {
	m.timeline = m.timeline[:0]
	for id, re := range m.running {
		if re.endBy <= now {
			re.endBy = m.jobs[id].StartTime + m.jobs[id].Walltime
		}
		m.timeline = append(m.timeline, backfill.Release{Nodes: re.alloc.Allocated, EndBy: re.endBy})
	}
	backfill.SortReleases(m.timeline) // map range order is random; canonicalize
	m.timelineV++
}

// runReleaseAdd records a newly running job in the maintained timeline
// (no-op when the timeline is rebuilt per iteration instead).
func (m *Manager) runReleaseAdd(re *runEntry, j *job.Job) {
	re.endBy = j.StartTime + m.est.Estimate(j)
	if m.maintainTL {
		m.timelineInsert(backfill.Release{Nodes: re.alloc.Allocated, EndBy: re.endBy})
	}
}

// runReleaseDrop removes a no-longer-running job's timeline entry.
func (m *Manager) runReleaseDrop(re *runEntry) {
	if m.maintainTL {
		m.timelineRemove(backfill.Release{Nodes: re.alloc.Allocated, EndBy: re.endBy})
	}
}

// planReleases returns the release list for this iteration in canonical
// sorted order. The maintained timeline is returned by reference (zero
// copies, zero sorts at steady state); otherwise — reference core, or an
// unstable estimator whose predictions drift between iterations — the list
// is rebuilt from the running map into the reusable buffer and sorted,
// exactly the reference semantics.
func (m *Manager) planReleases(now sim.Time) []backfill.Release {
	if m.maintainTL {
		if len(m.timeline) > 0 && m.timeline[0].EndBy <= now {
			m.timelineRebuild(now)
		}
		return m.timeline
	}
	releases := m.releasesBuf[:0]
	for id, re := range m.running {
		j := m.jobs[id]
		// Plan with the estimator's runtime; once a running job outlives
		// its prediction, correct to the walltime bound (Tsafrir-style
		// prediction correction) — treating it as "about to finish"
		// would collapse the shadow time and let backfill starve the
		// head job.
		endBy := j.StartTime + m.est.Estimate(j)
		if endBy <= now {
			endBy = j.StartTime + j.Walltime
		}
		releases = append(releases, backfill.Release{
			Nodes: re.alloc.Allocated,
			EndBy: endBy,
		})
	}
	backfill.SortReleases(releases)
	m.releasesBuf = releases
	return releases
}

package resmgr

import (
	"math/rand"
	"testing"

	"cosched/internal/cluster"
	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/policy"
	"cosched/internal/sim"
)

// checkQueueIndex asserts the queue structures are consistent with the live
// job set after an arbitrary Submit/Cancel history: exact membership, the
// position index pointing at the right slots (indexed mode), and storage
// order agreeing with the canonical policy order (sorted mode).
func checkQueueIndex(t *testing.T, m *Manager, live map[job.ID]*job.Job) {
	t.Helper()
	if len(m.queue) != len(live) {
		t.Fatalf("queue length = %d, want %d", len(m.queue), len(live))
	}
	seen := make(map[job.ID]bool, len(m.queue))
	for i, q := range m.queue {
		if _, ok := live[q.ID]; !ok {
			t.Fatalf("queue[%d] holds cancelled job %d", i, q.ID)
		}
		if seen[q.ID] {
			t.Fatalf("job %d appears twice in queue", q.ID)
		}
		seen[q.ID] = true
		if m.queuePos != nil {
			if idx, ok := m.queuePos[q.ID]; !ok || idx != i {
				t.Fatalf("queuePos[%d] = %d,%v; job is at %d", q.ID, idx, ok, i)
			}
		}
	}
	if m.queuePos != nil && len(m.queuePos) != len(m.queue) {
		t.Fatalf("queuePos has %d entries, queue has %d", len(m.queuePos), len(m.queue))
	}
	if m.sortedQueue {
		var ord policy.Orderer
		want := ord.Order(m.pol, m.queue, 0, func(*job.Job) float64 { return 0 })
		for i := range want {
			if want[i] != m.queue[i] {
				t.Fatalf("sorted queue out of canonical order at %d: have job %d, want %d",
					i, m.queue[i].ID, want[i].ID)
			}
		}
	}
}

// TestQueueIndexInterleavedCancelSubmit drives hundreds of interleaved
// Submit/Cancel operations against each queue representation — sorted
// (time-invariant policy), position-indexed (time-varying policy), and the
// reference linear scan — and checks the index invariants after every step.
// The engine never runs, so every job stays queued until cancelled.
func TestQueueIndexInterleavedCancelSubmit(t *testing.T) {
	cases := []struct {
		name string
		pol  policy.Policy
		core Core
	}{
		{"incremental_sorted_sjf", policy.SJF{}, CoreIncremental},
		{"incremental_indexed_wfp", policy.WFP{}, CoreIncremental},
		{"reference_sjf", policy.SJF{}, CoreReference},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine()
			m := New(eng, Options{
				Name: "q", Pool: cluster.New("q", 1),
				Policy: tc.pol, Core: tc.core,
			})
			if tc.core == CoreIncremental {
				wantSorted := policy.IsTimeInvariant(tc.pol)
				if m.sortedQueue != wantSorted {
					t.Fatalf("sortedQueue = %v, want %v", m.sortedQueue, wantSorted)
				}
			}
			rng := rand.New(rand.NewSource(42))
			live := map[job.ID]*job.Job{}
			var order []job.ID // insertion order, for deterministic victim picks
			nextID := job.ID(1)
			for step := 0; step < 600; step++ {
				if len(order) == 0 || rng.Intn(3) != 0 {
					wall := sim.Duration(60 + rng.Intn(5000))
					j := job.New(nextID, 1+rng.Intn(4), 0, wall, wall)
					nextID++
					if err := m.Submit(j); err != nil {
						t.Fatalf("step %d: submit: %v", step, err)
					}
					live[j.ID] = j
					order = append(order, j.ID)
				} else {
					k := rng.Intn(len(order))
					id := order[k]
					order = append(order[:k], order[k+1:]...)
					if err := m.Cancel(id); err != nil {
						t.Fatalf("step %d: cancel %d: %v", step, id, err)
					}
					delete(live, id)
				}
				checkQueueIndex(t, m, live)
			}
		})
	}
}

// pairDomainsCore is pairDomains with an explicit scheduling core.
func pairDomainsCore(t *testing.T, core Core, cfgA, cfgB cosched.Config) (*sim.Engine, *Manager, *Manager) {
	t.Helper()
	eng := sim.NewEngine()
	a := New(eng, Options{
		Name: "A", Pool: cluster.New("A", 100),
		Policy: policy.FCFS{}, Backfilling: true, Cosched: cfgA, Core: core,
	})
	b := New(eng, Options{
		Name: "B", Pool: cluster.New("B", 100),
		Policy: policy.FCFS{}, Backfilling: true, Cosched: cfgB, Core: core,
	})
	a.AddPeer("B", b)
	b.AddPeer("A", a)
	return eng, a, b
}

// TestCancelHoldingJobRetriggersIteration pins the cancel→replan path on
// both cores: cancelling a holding job frees its nodes and the iteration it
// requests must start the blocked job at the same instant — in particular
// the incremental core's skip-cache must notice the freed nodes.
func TestCancelHoldingJobRetriggersIteration(t *testing.T) {
	for _, core := range []Core{CoreReference, CoreIncremental} {
		t.Run(core.String(), func(t *testing.T) {
			cfg := cosched.DefaultConfig(cosched.Hold)
			eng, a, b := pairDomainsCore(t, core, cfg, cfg)
			ja := job.New(1, 100, 0, 600, 600)
			jb := job.New(1, 10, 5000, 600, 600)
			pairJobs(ja, jb)
			blocked := job.New(2, 100, 10, 600, 600)
			submitAll(t, a, ja, blocked)
			submitAll(t, b, jb)
			eng.RunUntil(100)
			if ja.State != job.Holding {
				t.Fatalf("ja state = %s, want holding", ja.State)
			}
			if err := a.Cancel(1); err != nil {
				t.Fatal(err)
			}
			eng.Run()
			if blocked.StartTime != 100 {
				t.Fatalf("blocked start = %d, want 100 (cancel instant)", blocked.StartTime)
			}
			if blocked.State != job.Completed {
				t.Fatalf("blocked state = %s", blocked.State)
			}
		})
	}
}

// steadyBlocked builds a one-domain blocked steady state: a 90-node filler
// runs on a 100-node pool and every queued job needs 20 nodes, so no plan
// can start or backfill anything until capacity changes.
func steadyBlocked(t *testing.T, core Core) (*sim.Engine, *Manager, []*job.Job) {
	t.Helper()
	eng := sim.NewEngine()
	m := New(eng, Options{
		Name: "s", Pool: cluster.New("s", 100),
		Policy: policy.FCFS{}, Backfilling: true, Core: core,
	})
	filler := job.New(1, 90, 0, 100000, 100000)
	blocked := []*job.Job{
		job.New(2, 20, 0, 600, 600),
		job.New(3, 20, 0, 600, 600),
		job.New(4, 20, 0, 600, 600),
	}
	if err := m.Submit(filler); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(0)
	for _, j := range blocked {
		if err := m.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(0)
	if filler.State != job.Running || m.QueueLength() != 3 {
		t.Fatalf("scenario did not settle: filler=%s queue=%d", filler.State, m.QueueLength())
	}
	return eng, m, blocked
}

// TestSkipCacheSkipsAndInvalidates is the skip-cache white-box test: at an
// unchanged blocked state iterations are elided (same instant and, for this
// time-invariant EASY configuration, across instants), every queue or pool
// change forces a real replan, and skipped iterations still count in
// Iterations().
func TestSkipCacheSkipsAndInvalidates(t *testing.T) {
	_, m, blocked := steadyBlocked(t, CoreIncremental)
	if !m.acrossInstant || !m.sortedQueue || !m.maintainTL {
		t.Fatalf("scenario not fully incremental: across=%v sorted=%v maintainTL=%v",
			m.acrossInstant, m.sortedQueue, m.maintainTL)
	}

	iters, skips := m.Iterations(), m.Skips()
	m.Iterate(0) // identical state at the same instant
	if m.Skips() != skips+1 || m.Iterations() != iters+1 {
		t.Fatalf("same-instant skip: skips %d→%d iterations %d→%d",
			skips, m.Skips(), iters, m.Iterations())
	}
	m.Iterate(100) // identical state at a later instant: emptiness is monotone
	if m.Skips() != skips+2 {
		t.Fatalf("across-instant skip did not engage: skips = %d", m.Skips())
	}

	// A queue change invalidates: the replan runs (and still plans nothing —
	// the remaining jobs are as blocked as before).
	if err := m.Cancel(blocked[2].ID); err != nil {
		t.Fatal(err)
	}
	skips = m.Skips()
	m.Iterate(0)
	if m.Skips() != skips {
		t.Fatalf("iteration after queue change was skipped")
	}
	if m.RunningCount() != 1 || m.QueueLength() != 2 {
		t.Fatalf("replan changed state: running=%d queue=%d", m.RunningCount(), m.QueueLength())
	}
	m.Iterate(0) // cached again
	if m.Skips() != skips+1 {
		t.Fatalf("cache did not re-arm after replan")
	}

	// A pool change invalidates: cancelling the filler frees the machine and
	// the very next iteration starts the survivors.
	if err := m.Cancel(1); err != nil {
		t.Fatal(err)
	}
	skips = m.Skips()
	m.Iterate(0)
	if m.Skips() != skips {
		t.Fatalf("iteration after pool change was skipped")
	}
	if m.RunningCount() != 2 || m.QueueLength() != 0 {
		t.Fatalf("freed capacity not used: running=%d queue=%d", m.RunningCount(), m.QueueLength())
	}
}

// TestReferenceCoreNeverSkips pins the reference core to the original
// semantics: no skip-cache, no maintained structures.
func TestReferenceCoreNeverSkips(t *testing.T) {
	_, m, _ := steadyBlocked(t, CoreReference)
	if m.sortedQueue || m.maintainTL || m.acrossInstant || m.queuePos != nil {
		t.Fatalf("reference core enabled incremental structures")
	}
	for i := 0; i < 5; i++ {
		m.Iterate(0)
	}
	if m.Skips() != 0 {
		t.Fatalf("reference core skipped %d iterations", m.Skips())
	}
}

// Package resmgr implements a Cobalt-style batch resource manager for one
// scheduling domain: a job queue ordered by a pluggable policy, EASY
// backfilling, and the coscheduling extension of Tang et al. (ICPP 2011) —
// Algorithm 1's Run_Job, the hold/yield schemes, the periodic-release
// deadlock breaker, and the held-fraction / max-yield / priority-boost
// enhancements.
//
// A Manager is driven entirely by a sim.Engine; the live daemon wraps the
// same Manager in a real-time driver. Managers in different domains talk to
// each other only through the cosched.Peer interface, so a direct in-process
// peer and the wire protocol are interchangeable.
package resmgr

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"

	"cosched/internal/backfill"
	"cosched/internal/cluster"
	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/metrics"
	"cosched/internal/policy"
	"cosched/internal/predict"
	"cosched/internal/sim"
)

// Errors returned by Manager operations.
var (
	ErrUnknownJob   = errors.New("resmgr: unknown job")
	ErrDuplicateJob = errors.New("resmgr: duplicate job id")
	ErrBadState     = errors.New("resmgr: job in wrong state")
	ErrNoPeer       = errors.New("resmgr: no peer for domain")
)

// Observer receives job lifecycle notifications; all methods are optional
// via the Null implementation. Used by tests, the metrics layer, and the
// live daemon's log.
type Observer interface {
	JobSubmitted(now sim.Time, j *job.Job)
	JobStarted(now sim.Time, j *job.Job)
	JobCompleted(now sim.Time, j *job.Job)
	JobHeld(now sim.Time, j *job.Job)
	JobYielded(now sim.Time, j *job.Job)
	JobReleased(now sim.Time, j *job.Job, requeued bool)
	JobCancelled(now sim.Time, j *job.Job)
}

// ExpectObserver is an optional Observer extension notified when a job is
// pre-registered with Expect. A crash-safe daemon must journal expectations:
// a recovered manager that forgot an expected job would treat the mate's
// queries as "unknown job" and break the pair's co-start guarantee.
// Discovered by type assertion; plain Observers are unaffected.
type ExpectObserver interface {
	JobExpected(now sim.Time, j *job.Job)
}

// PeerDecisionObserver is an optional Observer extension recording the
// outcome of inbound peer start requests (TryStartMate/StartMate). The
// journal keeps these as audit records: replay does not need them (the
// resulting start/hold transitions are journaled separately), but a
// post-mortem of a recovery needs to know which starts were remotely
// initiated. Discovered by type assertion.
type PeerDecisionObserver interface {
	PeerDecision(now sim.Time, method string, id job.ID, ok bool)
}

// NullObserver ignores every notification.
type NullObserver struct{}

// JobSubmitted implements Observer.
func (NullObserver) JobSubmitted(sim.Time, *job.Job) {}

// JobStarted implements Observer.
func (NullObserver) JobStarted(sim.Time, *job.Job) {}

// JobCompleted implements Observer.
func (NullObserver) JobCompleted(sim.Time, *job.Job) {}

// JobHeld implements Observer.
func (NullObserver) JobHeld(sim.Time, *job.Job) {}

// JobYielded implements Observer.
func (NullObserver) JobYielded(sim.Time, *job.Job) {}

// JobReleased implements Observer.
func (NullObserver) JobReleased(sim.Time, *job.Job, bool) {}

// JobCancelled implements Observer.
func (NullObserver) JobCancelled(sim.Time, *job.Job) {}

// runEntry tracks a running job's allocation, completion event, and the
// release bound the planners were told (endBy), which doubles as the key
// for removing the job's entry from the maintained sorted timeline.
type runEntry struct {
	alloc *cluster.Allocation
	end   sim.EventRef
	endBy sim.Time
}

// holdEntry tracks a holding job's allocation. Release timing is handled
// by the manager-wide release scan, not per-entry timers.
type holdEntry struct {
	alloc *cluster.Allocation
}

// BackfillMode selects the planner strategy.
type BackfillMode int

const (
	// BackfillNone starts jobs strictly in priority order.
	BackfillNone BackfillMode = iota
	// BackfillEASY protects only the highest-priority blocked job
	// (aggressive backfilling — the paper's production setting).
	BackfillEASY
	// BackfillConservative reserves a slot for every blocked job.
	BackfillConservative
)

// String returns the mode's configuration name.
func (m BackfillMode) String() string {
	switch m {
	case BackfillEASY:
		return "easy"
	case BackfillConservative:
		return "conservative"
	default:
		return "none"
	}
}

// ParseBackfillMode resolves "", "none", "easy", "conservative".
func ParseBackfillMode(s string) (BackfillMode, bool) {
	switch s {
	case "none":
		return BackfillNone, true
	case "", "easy":
		return BackfillEASY, true
	case "conservative":
		return BackfillConservative, true
	default:
		return BackfillNone, false
	}
}

// Options configures a Manager.
type Options struct {
	Name        string            // domain name, e.g. "intrepid"
	Pool        *cluster.Pool     // node pool (required)
	Policy      policy.Policy     // queue order; nil = WFP
	Backfilling bool              // enable backfill (EASY unless Mode set)
	Mode        BackfillMode      // planner strategy when Backfilling is set
	Estimator   predict.Estimator // backfill planning runtimes; nil = walltime
	Cosched     cosched.Config    // coscheduling configuration
	Observer    Observer          // nil = NullObserver
	Core        Core              // scheduling core; zero value = incremental
}

// Manager is the resource manager for one domain. Not safe for concurrent
// use; the engine's single-threaded event loop serializes everything.
type Manager struct {
	name string
	eng  *sim.Engine
	pool *cluster.Pool
	pol  policy.Policy
	bf   BackfillMode
	est  predict.Estimator
	cfg  cosched.Config
	obs  Observer

	peers map[string]cosched.Peer

	jobs map[job.ID]*job.Job
	// all mirrors jobs in insertion order. Jobs() iterates it instead of
	// the map so downstream consumers (streaming metrics, audits) see a
	// deterministic order without sorting; nothing is ever removed from
	// the registry, so the two stay in lockstep.
	all     []*job.Job
	queue   []*job.Job
	running map[job.ID]*runEntry
	holding map[job.ID]*holdEntry

	demoted     map[job.ID]bool // ranked last for the current iteration
	lastYieldAt map[job.ID]sim.Time

	// releaseScan is the single armed timer implementing the periodic
	// hold-release enhancement; it fires when the longest-held job
	// reaches the release interval and is retargeted as holds come and
	// go. One scan (and one scheduling iteration) replaces what would
	// otherwise be a timer per holding job.
	releaseScan sim.EventRef

	iterPending bool
	completed   int
	cancelled   int
	iterations  uint64

	// holdBudget caps concurrent holds when the daemon degrades to
	// journal-less mode (-1 = no cap); holdsRefused counts the holds the
	// budget downgraded to yields. See SetHoldBudget.
	holdBudget   int
	holdsRefused uint64

	// ord, releasesBuf, eligBuf, and planBuf are reusable per-iteration
	// buffers; Iterate runs on every queue/pool change, so allocating them
	// fresh each time is a measurable share of a simulation's allocation
	// bill. boostFn and estFn pin the bound-method closures once instead
	// of re-creating (and heap-allocating) them every iteration.
	ord         policy.Orderer
	releasesBuf []backfill.Release
	eligBuf     []*job.Job
	planBuf     []backfill.Decision
	boostFn     policy.Boost
	estFn       backfill.EstimateFunc

	// Incremental core state (see Core in incremental.go). The mode flags
	// are fixed at construction: sortedQueue keeps the queue canonically
	// ordered (time-invariant policy, yield-boost off); queuePos indexes
	// positions for O(1) removal otherwise; maintainTL keeps the release
	// timeline sorted across iterations (stable estimator); acrossInstant
	// widens the skip-cache beyond a single simulated instant.
	core          Core
	sortedQueue   bool
	maintainTL    bool
	acrossInstant bool
	queuePos      map[job.ID]int
	timeline      []backfill.Release

	queueV, timelineV, yieldV uint64

	lastFP      iterFP
	lastFPValid bool
	lastEmpty   bool
	skips       uint64

	// Prebuilt event handlers. Scheduling with a fresh closure (or method
	// value) heap-allocates the function value per event; building these
	// once in New and passing the varying job through AtArg/AfterArg makes
	// every steady-state event on the job lifecycle path allocation-free.
	iterFn     sim.Handler    // RequestIteration body
	releaseFn  sim.Handler    // releaseScanFire method value, pinned once
	submitFn   sim.ArgHandler // trace-replay submission (arg = *job.Job)
	completeFn sim.ArgHandler // job completion (arg = *job.Job)

	// freeRun and freeHold recycle the per-start bookkeeping entries, so
	// steady-state start/complete churn allocates nothing (the pool
	// recycles the Allocation structs the same way).
	freeRun  []*runEntry
	freeHold []*holdEntry

	// Chained trace replay (SubmitTrace): the sorted trace, the cursor to
	// the next unsubmitted job, and the pinned chain handler.
	replay    []*job.Job
	replayIdx int
	replayFn  sim.Handler

	// Streaming trace replay (SubmitTraceStream): the pull source feeding
	// the cursor window, the look-ahead size, and the fold state that lets
	// terminal jobs leave the registry — see stream.go. allHead is the
	// index of the first live registry entry; entries before it were folded
	// into collector (registration order) and evicted.
	streaming        bool
	src              JobSource
	streamWindow     int
	srcDone          bool
	streamErr        error
	streamStarted    bool
	lastStreamSubmit sim.Time
	collector        *metrics.Collector
	allHead          int
	folded           int
}

// newRunEntry returns a zeroed runEntry, recycled when one is available.
func (m *Manager) newRunEntry(alloc *cluster.Allocation) *runEntry {
	if k := len(m.freeRun); k > 0 {
		re := m.freeRun[k-1]
		m.freeRun[k-1] = nil
		m.freeRun = m.freeRun[:k-1]
		*re = runEntry{alloc: alloc}
		return re
	}
	return &runEntry{alloc: alloc}
}

// recycleRun returns a runEntry removed from the running set to the free
// list. The caller must already have deleted it from m.running.
func (m *Manager) recycleRun(re *runEntry) {
	*re = runEntry{}
	m.freeRun = append(m.freeRun, re)
}

// newHoldEntry and recycleHold are the holdEntry counterparts.
func (m *Manager) newHoldEntry(alloc *cluster.Allocation) *holdEntry {
	if k := len(m.freeHold); k > 0 {
		he := m.freeHold[k-1]
		m.freeHold[k-1] = nil
		m.freeHold = m.freeHold[:k-1]
		*he = holdEntry{alloc: alloc}
		return he
	}
	return &holdEntry{alloc: alloc}
}

func (m *Manager) recycleHold(he *holdEntry) {
	*he = holdEntry{}
	m.freeHold = append(m.freeHold, he)
}

// New creates a Manager bound to engine eng.
func New(eng *sim.Engine, opt Options) *Manager {
	if opt.Pool == nil {
		panic("resmgr: Options.Pool is required")
	}
	pol := opt.Policy
	if pol == nil {
		pol = policy.WFP{}
	}
	obs := opt.Observer
	if obs == nil {
		obs = NullObserver{}
	}
	name := opt.Name
	if name == "" {
		name = opt.Pool.Name()
	}
	est := opt.Estimator
	if est == nil {
		est = predict.Walltime{}
	}
	mode := BackfillNone
	if opt.Backfilling {
		mode = BackfillEASY
		if opt.Mode != BackfillNone {
			mode = opt.Mode
		}
	}
	m := &Manager{
		name:        name,
		eng:         eng,
		pool:        opt.Pool,
		pol:         pol,
		bf:          mode,
		est:         est,
		cfg:         opt.Cosched,
		obs:         obs,
		peers:       make(map[string]cosched.Peer),
		jobs:        make(map[job.ID]*job.Job),
		running:     make(map[job.ID]*runEntry),
		holding:     make(map[job.ID]*holdEntry),
		demoted:     make(map[job.ID]bool),
		lastYieldAt: make(map[job.ID]sim.Time),
		core:        opt.Core,
		holdBudget:  -1,
	}
	m.boostFn = m.boost
	m.estFn = m.est.Estimate
	m.iterFn = func(now sim.Time) {
		m.iterPending = false
		m.Iterate(now)
	}
	m.releaseFn = m.releaseScanFire
	m.submitFn = func(_ sim.Time, arg any) {
		j := arg.(*job.Job)
		if j.State == job.Cancelled {
			return // withdrawn before arrival
		}
		// Submit resets SubmitTime to now, which equals j.SubmitTime.
		if err := m.Submit(j); err != nil {
			panic(fmt.Sprintf("resmgr %s: replay submit job %d: %v", m.name, j.ID, err))
		}
	}
	m.completeFn = func(end sim.Time, arg any) {
		m.completeJob(arg.(*job.Job), end)
	}
	m.replayFn = m.replayStep
	if m.core == CoreIncremental {
		// The queue stays pre-sorted only when the canonical order is a
		// function of queue membership alone: time-invariant scores and no
		// per-yield boosts (demotion iterations fall back to a full sort
		// per iteration instead of disabling the mode). Otherwise an
		// id→position index gives O(1) removal.
		m.sortedQueue = policy.IsTimeInvariant(pol) && !m.cfg.YieldBoost
		if !m.sortedQueue {
			m.queuePos = make(map[job.ID]int)
		}
		// The timeline caches each running job's endBy at start, so it is
		// maintainable only while the estimator's predictions cannot drift
		// afterwards; unstable estimators rebuild per iteration.
		m.maintainTL = predict.IsStable(est)
		// Skips may span instants only when plan emptiness is monotone in
		// now — see iterFP. Conservative backfilling re-derives every
		// reservation from a full profile, so it stays same-instant.
		m.acrossInstant = policy.IsTimeInvariant(pol) && m.maintainTL &&
			mode != BackfillConservative
	}
	return m
}

// Name returns the domain name.
func (m *Manager) Name() string { return m.name }

// Pool returns the node pool.
func (m *Manager) Pool() *cluster.Pool { return m.pool }

// Config returns the coscheduling configuration.
func (m *Manager) Config() cosched.Config { return m.cfg }

// Engine returns the simulation engine driving this manager.
func (m *Manager) Engine() *sim.Engine { return m.eng }

// Iterations returns how many scheduling iterations have run.
func (m *Manager) Iterations() uint64 { return m.iterations }

// AddPeer registers the peer serving the named remote domain.
func (m *Manager) AddPeer(domain string, p cosched.Peer) { m.peers[domain] = p }

// peerFor returns the peer for a mate reference.
func (m *Manager) peerFor(ref job.MateRef) (cosched.Peer, error) {
	p, ok := m.peers[ref.Domain]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoPeer, ref.Domain)
	}
	return p, nil
}

// addJob is the single registration point for the job registry: every path
// that writes m.jobs goes through it so the insertion-ordered mirror stays
// consistent with the map.
func (m *Manager) addJob(j *job.Job) {
	m.jobs[j.ID] = j
	m.all = append(m.all, j)
}

// Expect pre-registers a job that will be submitted later (trace-driven
// operation). Until Submit, peers asking about it see StatusUnsubmitted.
func (m *Manager) Expect(j *job.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if _, dup := m.jobs[j.ID]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateJob, j.ID)
	}
	if j.State != job.Unsubmitted {
		return fmt.Errorf("%w: job %d is %s, want unsubmitted", ErrBadState, j.ID, j.State)
	}
	m.addJob(j)
	if eo, ok := m.obs.(ExpectObserver); ok {
		eo.JobExpected(m.eng.Now(), j)
	}
	return nil
}

// Submit moves a job into the queue. Jobs not previously registered with
// Expect are registered on the fly. A scheduling iteration is requested.
func (m *Manager) Submit(j *job.Job) error {
	existing, known := m.jobs[j.ID]
	if known && existing != j {
		return fmt.Errorf("%w: %d", ErrDuplicateJob, j.ID)
	}
	if !known {
		if err := j.Validate(); err != nil {
			return err
		}
		m.addJob(j)
	}
	if err := j.Advance(job.Queued); err != nil {
		return err
	}
	now := m.eng.Now()
	j.SubmitTime = now
	m.enqueue(j)
	m.obs.JobSubmitted(now, j)
	m.RequestIteration()
	return nil
}

// SubmitAt schedules Submit(j) at the job's SubmitTime on the engine.
// It is the single-job trace-replay entry point; bulk traces should use
// SubmitTrace, which replays through one chained event instead of
// preloading the event heap with one submission per job.
func (m *Manager) SubmitAt(j *job.Job) error {
	if err := m.Expect(j); err != nil {
		return err
	}
	_, err := m.eng.AtArg(j.SubmitTime, sim.PrioritySubmit, m.submitFn, j)
	return err
}

// SubmitTrace registers a whole submit-time-sorted trace and replays it
// through a single chained submission event: only the next arrival is ever
// in the event heap, so the heap's size — and every push/pop's comparison
// depth — tracks the running-job population instead of the full trace
// length. Jobs cancelled before their submit instant are skipped, exactly
// as SubmitAt's replay event would. The relative order of same-instant
// submissions is the trace order, which matches scheduling one SubmitAt
// event per job in trace order (both fire in PrioritySubmit band, in
// sequence order). Call once per manager, before the run starts.
func (m *Manager) SubmitTrace(jobs []*job.Job) error {
	if m.replay != nil || m.streaming {
		return fmt.Errorf("resmgr %s: SubmitTrace called twice", m.name)
	}
	if len(m.jobs) == 0 && len(jobs) > 0 {
		// Presize the registry for the whole trace: incremental map growth
		// during bulk Expect is a measurable slice of short simulations.
		m.jobs = make(map[job.ID]*job.Job, len(jobs))
		m.all = make([]*job.Job, 0, len(jobs))
	}
	for i, j := range jobs {
		if i > 0 && j.SubmitTime < jobs[i-1].SubmitTime {
			return fmt.Errorf("resmgr %s: SubmitTrace: trace not sorted by submit time at index %d", m.name, i)
		}
		if err := m.Expect(j); err != nil {
			return err
		}
	}
	m.replay = jobs
	m.armReplay()
	return nil
}

// armReplay schedules the chained submission event for the next
// unsubmitted trace job, if any.
func (m *Manager) armReplay() {
	if m.replayIdx >= len(m.replay) {
		return
	}
	if _, err := m.eng.At(m.replay[m.replayIdx].SubmitTime, sim.PrioritySubmit, m.replayFn); err != nil {
		panic(fmt.Sprintf("resmgr %s: armReplay: %v", m.name, err))
	}
}

// replayStep submits every trace job due at the current instant, then
// re-arms the chain for the next arrival. In streaming mode the window is
// refilled between submission bursts: a refill may surface more jobs due
// at this same instant, which must submit now to match what SubmitTrace
// would have done with the materialized trace.
func (m *Manager) replayStep(now sim.Time) {
	for {
		for m.replayIdx < len(m.replay) {
			j := m.replay[m.replayIdx]
			if j.SubmitTime != now {
				break
			}
			m.replayIdx++
			if j.State == job.Cancelled {
				continue // withdrawn before arrival; see Cancel
			}
			if err := m.Submit(j); err != nil {
				panic(fmt.Sprintf("resmgr %s: replay submit job %d: %v", m.name, j.ID, err))
			}
		}
		if !m.streaming || m.srcDone || m.streamErr != nil {
			break
		}
		before := len(m.replay) - m.replayIdx
		if err := m.refillStream(); err != nil {
			// A bad source stops further arrivals; the jobs already in
			// flight finish normally and StreamErr reports the cause.
			m.streamErr = err
			break
		}
		if len(m.replay)-m.replayIdx == before {
			break // window already full (or drained): nothing new due now
		}
		if m.replayIdx >= len(m.replay) || m.replay[m.replayIdx].SubmitTime != now {
			break
		}
	}
	m.armReplay()
}

// Job returns the job with the given ID, if known.
func (m *Manager) Job(id job.ID) (*job.Job, bool) {
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns all known jobs (any state) in registration order. The order
// is deterministic — streaming metrics accumulate in it — and the slice is
// freshly allocated; the pointed-to jobs are live. In streaming mode,
// terminal jobs already folded out of the registry are absent (their
// contribution lives in the manager's collector; see CollectReport).
func (m *Manager) Jobs() []*job.Job {
	live := m.all[m.allHead:]
	out := make([]*job.Job, len(live))
	copy(out, live)
	return out
}

// JobsOrdered returns the internal registration-ordered job slice without
// copying. Callers must not mutate it; it is meant for read-only metric
// sweeps over very large job populations.
func (m *Manager) JobsOrdered() []*job.Job { return m.all[m.allHead:] }

// QueueLength returns the number of queued jobs.
func (m *Manager) QueueLength() int { return len(m.queue) }

// RunningCount returns the number of running jobs.
func (m *Manager) RunningCount() int { return len(m.running) }

// HoldingCount returns the number of holding jobs.
func (m *Manager) HoldingCount() int { return len(m.holding) }

// SetHoldBudget caps how many jobs may hold concurrently; a hold that
// would exceed the cap is downgraded to a yield (counted by
// HoldsRefused). Negative removes the cap. The daemon's degradation
// controller sets this when the journal is lost: without durability the
// held-job table cannot survive a crash, so a degraded daemon keeps its
// exposure bounded rather than refusing service outright.
func (m *Manager) SetHoldBudget(n int) { m.holdBudget = n }

// HoldBudget returns the current hold cap (-1 = none).
func (m *Manager) HoldBudget() int { return m.holdBudget }

// HoldsRefused returns how many holds the budget downgraded to yields.
func (m *Manager) HoldsRefused() uint64 { return m.holdsRefused }

// CompletedCount returns the number of completed jobs.
func (m *Manager) CompletedCount() int { return m.completed }

// CancelledCount returns the number of cancelled jobs.
func (m *Manager) CancelledCount() int { return m.cancelled }

// Cancel withdraws a job (the qdel operation): a queued job leaves the
// queue, a holding job releases its nodes, a running job is killed and its
// nodes freed, an expected job will never be submitted. Terminal jobs
// cannot be cancelled.
func (m *Manager) Cancel(id job.ID) error {
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	now := m.eng.Now()
	switch j.State {
	case job.Unsubmitted:
		// The replay submit event (if any) checks the state and skips.
	case job.Queued:
		m.removeFromQueue(id)
		delete(m.lastYieldAt, id)
	case job.Holding:
		he := m.holding[id]
		j.HeldNodeSeconds += int64(he.alloc.Allocated) * (now - j.HoldStart)
		if err := m.pool.Release(now, he.alloc.ID); err != nil {
			panic(fmt.Sprintf("resmgr %s: cancel hold: %v", m.name, err))
		}
		delete(m.holding, id)
		m.recycleHold(he)
		m.scheduleReleaseScan()
	case job.Running:
		re := m.running[id]
		re.end.Cancel()
		if err := m.pool.Release(now, re.alloc.ID); err != nil {
			panic(fmt.Sprintf("resmgr %s: cancel run: %v", m.name, err))
		}
		m.runReleaseDrop(re)
		delete(m.running, id)
		m.recycleRun(re)
	default:
		return fmt.Errorf("%w: job %d is %s", ErrBadState, id, j.State)
	}
	if err := j.Advance(job.Cancelled); err != nil {
		panic(fmt.Sprintf("resmgr %s: cancel: %v", m.name, err))
	}
	j.EndTime = now
	m.cancelled++
	m.obs.JobCancelled(now, j)
	m.foldTerminalPrefix()
	m.RequestIteration()
	return nil
}

// RequestIteration schedules a scheduling iteration at the current instant
// (priority PrioritySchedule). Multiple requests at one instant coalesce.
func (m *Manager) RequestIteration() {
	if m.iterPending {
		return
	}
	m.iterPending = true
	m.eng.After(0, sim.PrioritySchedule, m.iterFn)
}

// boost computes the per-job additive priority adjustment: iteration-scoped
// demotion for released holders, escalation boosts for repeat yielders.
func (m *Manager) boost(j *job.Job) float64 {
	// boost runs once per queued job on every iteration; skipping the hash
	// lookup while no demotions are live (the overwhelmingly common state)
	// is a measurable win on large queues.
	if len(m.demoted) > 0 && m.demoted[j.ID] {
		return policy.DemotionBoost
	}
	if m.cfg.YieldBoost {
		return policy.YieldBoost(j.YieldCount)
	}
	return 0
}

// Iterate runs one scheduling iteration: order the queue, plan starts with
// (optional) EASY backfill, then push each planned job through Run_Job.
// The incremental core consults its skip-cache first — when no planner
// input has changed since an iteration whose plan was empty, planning is
// elided outright (the iteration still counts in Iterations()).
func (m *Manager) Iterate(now sim.Time) {
	m.iterations++
	// A job that yielded at this instant gave up its slot for the rest of
	// the instant: excluding it from the plan lets other jobs use the
	// nodes it declined (the "additional scheduling iteration" yieldJob
	// requests), and prevents a yield livelock within one event time.
	eligible := m.queue
	excluded := 0
	for i, j := range m.queue {
		if j.YieldCount > 0 && m.lastYieldAt[j.ID] == now {
			buf := m.eligBuf[:0]
			if cap(buf) < len(m.queue) {
				buf = make([]*job.Job, 0, len(m.queue))
			}
			buf = append(buf, m.queue[:i]...)
			excluded++
			for _, k := range m.queue[i+1:] {
				if k.YieldCount > 0 && m.lastYieldAt[k.ID] == now {
					excluded++
					continue
				}
				buf = append(buf, k)
			}
			m.eligBuf = buf
			eligible = buf
			break
		}
	}

	// Stale-timeline check before fingerprinting: a correction bumps
	// timelineV, so a cached empty plan computed against the old release
	// bounds cannot be replayed.
	if m.maintainTL && len(m.timeline) > 0 && m.timeline[0].EndBy <= now {
		m.timelineRebuild(now)
	}
	// Demotion iterations (the release-scan deadlock breaker) reorder via
	// boosts the fingerprint does not see; they bypass and poison the
	// cache rather than widen it for a once-per-interval event.
	useCache := m.core == CoreIncremental && len(m.demoted) == 0
	var fp iterFP
	if useCache {
		fp = m.fingerprint(now, excluded)
		if m.lastFPValid && fp == m.lastFP && m.lastEmpty {
			m.skips++
			return
		}
	}

	// A completely full pool cannot start, hold, or backfill anything at
	// this instant — every plan entry charges at least one node — so the
	// plan is empty by construction under every planner and the whole
	// score/sort/plan pass can be skipped. Completions free their nodes
	// before the same-instant scheduling iteration fires (PriorityEnd <
	// PrioritySchedule), so the shortcut is exact, not heuristic.
	if m.pool.Free() == 0 {
		if m.core == CoreIncremental {
			if useCache {
				m.lastFP, m.lastEmpty, m.lastFPValid = fp, true, true
			} else {
				m.lastFPValid = false
			}
		}
		return
	}

	var ordered []*job.Job
	if m.sortedQueue && len(m.demoted) == 0 {
		// The queue storage already holds the canonical order and every
		// boost is zero (time-invariant policy, yield-boost off, no
		// demotions), so Orderer.Order would return this exact
		// permutation — skip the score-and-sort entirely.
		ordered = eligible
	} else {
		ordered = m.ord.Order(m.pol, eligible, now, m.boostFn)
	}

	releases := m.planReleases(now)

	var plan []backfill.Decision
	if m.bf == BackfillConservative {
		plan = backfill.PlanConservativeInto(m.planBuf, ordered, m.pool.Total(), m.pool.Free(),
			m.pool.ChargeFor, releases, now, m.estFn)
	} else {
		plan = backfill.PlanInto(m.planBuf, ordered, m.pool.Free(), m.pool.ChargeFor,
			releases, now, m.bf == BackfillEASY, m.estFn)
	}
	m.planBuf = plan[:0]

	if m.core == CoreIncremental {
		if useCache {
			// Record the pre-execution state: if the plan is empty,
			// execution changes nothing and an identical future state may
			// skip; if not, execution bumps versions and the entry is inert.
			m.lastFP, m.lastEmpty, m.lastFPValid = fp, len(plan) == 0, true
		} else {
			m.lastFPValid = false
		}
	}

	for _, d := range plan {
		j := d.Job
		if j.State != job.Queued {
			continue // started/held meanwhile (e.g. via TryStartMate)
		}
		if !m.pool.CanAllocate(j.Nodes) {
			continue // nodes consumed by an earlier hold in this plan
		}
		m.RunJob(j, now, d.HoldSafe)
	}
}

// RunJob is Algorithm 1: start, hold, or yield a scheduled job j that the
// planner selected to run now with sufficient free nodes. holdSafe reports
// whether the job may occupy its nodes indefinitely without trampling the
// backfill reservation of a blocked higher-priority job; a job admitted
// only for its bounded walltime must yield rather than hold, since a hold
// is an unbounded occupation the EASY guarantee cannot absorb.
func (m *Manager) RunJob(j *job.Job, now sim.Time, holdSafe bool) {
	j.MarkReady(now)

	// Lines 34–36: coscheduling disabled → start normally.
	if !m.cfg.Enabled || !j.Paired() {
		m.startJob(j, now)
		return
	}

	// Query every mate (one for the paper's pairs; several for the N-way
	// extension). Fault tolerance: peer errors and unknown mates drop out
	// of the coordination set.
	type mateInfo struct {
		peer   cosched.Peer
		ref    job.MateRef
		status cosched.MateStatus
	}
	// Coordination sets are tiny (one mate for the paper's pairs, a
	// handful for N-way groups); stack-backed storage keeps this hot path
	// off the heap, falling back to append growth only past 4 mates.
	var matesArr [4]mateInfo
	mates := matesArr[:0]
	for _, ref := range j.Mates {
		p, err := m.peerFor(ref)
		if err != nil {
			continue // no peer configured: behave as mate unknown
		}
		known, err := p.GetMateJob(ref.Job)
		if err != nil || !known {
			continue // lines 30–31 / 25–26: start normally
		}
		st, err := p.GetMateStatus(ref.Job)
		if err != nil || st == cosched.StatusUnknown {
			continue
		}
		mates = append(mates, mateInfo{peer: p, ref: ref, status: st})
	}
	if len(mates) == 0 {
		m.startJob(j, now)
		return
	}

	// Partition the mates by what must happen for a simultaneous start.
	var releaseArr, tryArr [4]mateInfo
	toRelease := releaseArr[:0] // holding: release into run once we start
	toTry := tryArr[:0]         // queuing/unsubmitted: need TryStartMate
	terminalOnly := true
	for _, mi := range mates {
		switch mi.status {
		case cosched.StatusHolding:
			toRelease = append(toRelease, mi)
			terminalOnly = false
		case cosched.StatusQueuing, cosched.StatusUnsubmitted:
			toTry = append(toTry, mi)
			terminalOnly = false
		case cosched.StatusRunning, cosched.StatusCompleted:
			// Mate already past coordination (fault-tolerance fallback
			// start, or finished); it imposes no constraint.
		}
	}
	if terminalOnly {
		m.startJob(j, now)
		return
	}

	// Probe the non-ready mates first so an N-way group never starts
	// partially: every TryStartMate must be expected to succeed before any
	// is issued. (For 2-way this is one probe + one try, matching the
	// paper's tryStartMate exchange.)
	allStartable := true
	for _, mi := range toTry {
		ok, err := mi.peer.CanStartMate(mi.ref.Job)
		if err != nil || !ok {
			allStartable = false
			break
		}
	}
	if allStartable {
		// The resolver proposes now as the group's co-start instant; every
		// callee records it verbatim (see cosched.CoStarter), so the whole
		// group shares one start time even across live wall clocks.
		started := true
		for _, mi := range toTry {
			ok, err := tryStartMateAt(mi.peer, mi.ref.Job, now)
			if err != nil || !ok {
				started = false
				break
			}
		}
		if started {
			// Line 14 + lines 7–8: start self, then release holders.
			m.startJob(j, now)
			for _, mi := range toRelease {
				if err := startMateAt(mi.peer, mi.ref.Job, now); err != nil {
					// Peer failure after our start: nothing to undo —
					// the mate's own fault tolerance applies.
					continue
				}
			}
			return
		}
	}

	// Lines 16–23: mate cannot run now → hold or yield per local scheme.
	m.holdOrYield(j, now, holdSafe)
}

// holdOrYield applies the locally configured scheme with the §IV-E2
// threshold adjustments and the reservation-safety constraint.
func (m *Manager) holdOrYield(j *job.Job, now sim.Time, holdSafe bool) {
	scheme := m.cfg.Scheme

	// A hold that would delay a blocked higher-priority job's backfill
	// reservation is downgraded to a yield regardless of configuration.
	if !holdSafe {
		scheme = cosched.Yield
	}

	// Max-yield escalation: a job that yielded too often may hold.
	if scheme == cosched.Yield && m.cfg.MaxYields > 0 && j.YieldCount >= m.cfg.MaxYields {
		scheme = cosched.Hold
	}
	// Held-fraction cap: a hold that would exceed the cap yields instead.
	if scheme == cosched.Hold {
		maxFrac := m.cfg.EffectiveMaxHeldFraction()
		charge := m.pool.ChargeFor(j.Nodes)
		frac := float64(m.pool.Held()+charge) / float64(m.pool.Total())
		if frac > maxFrac {
			scheme = cosched.Yield
		}
	}
	// Degraded-mode hold budget: a journal-less daemon refuses holds
	// beyond the ceiling — holds are exactly the state that cannot be
	// rebuilt after a crash without a journal, so the budget bounds the
	// blast radius while durability is gone. Refused holds yield.
	if scheme == cosched.Hold && m.holdBudget >= 0 && len(m.holding) >= m.holdBudget {
		m.holdsRefused++
		scheme = cosched.Yield
	}

	if scheme == cosched.Hold {
		m.holdJob(j, now)
	} else {
		m.yieldJob(j, now)
	}
}

// startJob transitions a queued job to Running on freshly allocated nodes
// and schedules its completion. The planner guaranteed the allocation fits.
func (m *Manager) startJob(j *job.Job, now sim.Time) {
	m.startJobAt(j, now, now)
}

// startJobAt is startJob recording `at` as the job's start instant. at == now
// everywhere except when a remote resolver proposed the co-start instant over
// the wire (cosched.CoStarter) or a reconciliation adopts a surviving mate's
// historical start; the completion is always scheduled from the local clock,
// so adopted instants never rewind the engine.
func (m *Manager) startJobAt(j *job.Job, at, now sim.Time) {
	alloc, err := m.pool.Allocate(now, j.Nodes, cluster.AllocRun)
	if err != nil {
		// Plan raced with a TryStartMate that consumed nodes; leave the
		// job queued for the next iteration.
		return
	}
	if err := j.Advance(job.Running); err != nil {
		_ = m.pool.Release(now, alloc.ID)
		panic(fmt.Sprintf("resmgr %s: startJob: %v", m.name, err))
	}
	j.StartTime = at
	m.removeFromQueue(j.ID)
	if len(m.lastYieldAt) > 0 {
		delete(m.lastYieldAt, j.ID)
	}
	entry := m.newRunEntry(alloc)
	m.runReleaseAdd(entry, j)
	entry.end = m.eng.AfterArg(j.Runtime, sim.PriorityEnd, m.completeFn, j)
	m.running[j.ID] = entry
	m.obs.JobStarted(at, j)
}

// startHeldJob converts a Holding job's allocation to Run and schedules
// completion — the "its mate got ready, start now" path.
func (m *Manager) startHeldJob(j *job.Job, now sim.Time) error {
	return m.startHeldJobAt(j, now, now)
}

// startHeldJobAt is startHeldJob recording `at` as the start instant (see
// startJobAt). Held-node-seconds accrue to the local clock: the hold really
// did occupy nodes until now, whatever instant the pair agrees to record.
func (m *Manager) startHeldJobAt(j *job.Job, at, now sim.Time) error {
	he, ok := m.holding[j.ID]
	if !ok {
		return fmt.Errorf("%w: job %d not holding", ErrBadState, j.ID)
	}
	if _, err := m.pool.Convert(now, he.alloc.ID, cluster.AllocRun); err != nil {
		return err
	}
	delete(m.holding, j.ID)
	m.scheduleReleaseScan()
	j.HeldNodeSeconds += int64(he.alloc.Allocated) * (now - j.HoldStart)
	if err := j.Advance(job.Running); err != nil {
		panic(fmt.Sprintf("resmgr %s: startHeldJob: %v", m.name, err))
	}
	j.StartTime = at
	entry := m.newRunEntry(he.alloc)
	m.recycleHold(he)
	m.runReleaseAdd(entry, j)
	entry.end = m.eng.AfterArg(j.Runtime, sim.PriorityEnd, m.completeFn, j)
	m.running[j.ID] = entry
	m.obs.JobStarted(at, j)
	return nil
}

// holdJob implements self.holdJob(j, N): allocate the nodes as held and
// arm the periodic release timer.
func (m *Manager) holdJob(j *job.Job, now sim.Time) {
	alloc, err := m.pool.Allocate(now, j.Nodes, cluster.AllocHold)
	if err != nil {
		return // lost the nodes inside this iteration; stay queued
	}
	if err := j.Advance(job.Holding); err != nil {
		_ = m.pool.Release(now, alloc.ID)
		panic(fmt.Sprintf("resmgr %s: holdJob: %v", m.name, err))
	}
	j.HoldStart = now
	j.HoldCount++
	m.removeFromQueue(j.ID)
	m.holding[j.ID] = m.newHoldEntry(alloc)
	m.obs.JobHeld(now, j)
	m.scheduleReleaseScan()
}

// yieldJob implements self.yieldJob(j): the job stays queued, its yield is
// recorded, and another scheduling iteration is requested so other jobs can
// use the nodes it declined.
func (m *Manager) yieldJob(j *job.Job, now sim.Time) {
	j.YieldCount++
	m.lastYieldAt[j.ID] = now
	m.yieldV++ // yield counts and same-instant exclusions feed the fingerprint
	m.obs.JobYielded(now, j)
	m.RequestIteration()
}

// scheduleReleaseScan (re)arms the release timer at the earliest instant a
// holding job reaches the release interval. With no holds (or the
// enhancement disabled) no timer is armed, so the event queue can drain.
func (m *Manager) scheduleReleaseScan() {
	if m.cfg.ReleaseInterval <= 0 {
		return
	}
	if m.releaseScan.Pending() {
		return // a scan is already armed; it re-arms itself while holds exist
	}
	due := sim.Time(math.MaxInt64)
	for id := range m.holding {
		if t := m.jobs[id].HoldStart + m.cfg.ReleaseInterval; t < due {
			due = t
		}
	}
	if due == math.MaxInt64 {
		return // nothing holding: let the event queue drain
	}
	if now := m.eng.Now(); due < now {
		due = now
	}
	ref, err := m.eng.At(due, sim.PriorityRelease, m.releaseFn)
	if err != nil {
		panic(fmt.Sprintf("resmgr %s: scheduleReleaseScan: %v", m.name, err))
	}
	m.releaseScan = ref
}

// releaseScanFire is the deadlock-breaking enhancement (§IV-E1): at every
// release boundary all holding jobs temporarily release their nodes and
// are ranked last for one scheduling iteration, so the machine's entire
// held capacity is offered to waiting jobs at a single instant (a
// staggered per-job release can never accumulate enough nodes for a
// blocked full-machine job, leaving a cross-machine circular wait the
// enhancement exists to break). Holders whose nodes nobody takes re-hold
// within the same iteration; the rest stay queued.
func (m *Manager) releaseScanFire(now sim.Time) {
	due := make([]*job.Job, 0, len(m.holding))
	for id := range m.holding {
		due = append(due, m.jobs[id])
	}
	// Map iteration order is random; sort for reproducible simulations.
	slices.SortFunc(due, func(a, b *job.Job) int { return cmp.Compare(a.ID, b.ID) })
	for _, j := range due {
		he := m.holding[j.ID]
		j.HeldNodeSeconds += int64(he.alloc.Allocated) * (now - j.HoldStart)
		if err := m.pool.Release(now, he.alloc.ID); err != nil {
			panic(fmt.Sprintf("resmgr %s: release scan: %v", m.name, err))
		}
		delete(m.holding, j.ID)
		m.recycleHold(he)
		if err := j.Advance(job.Queued); err != nil {
			panic(fmt.Sprintf("resmgr %s: release scan: %v", m.name, err))
		}
		m.enqueue(j)
		m.demoted[j.ID] = true
		m.obs.JobReleased(now, j, true)
	}
	if len(due) > 0 {
		// One iteration with every released holder demoted to the back;
		// the demotion window is exactly this iteration.
		m.Iterate(now)
		for _, j := range due {
			delete(m.demoted, j.ID)
		}
	}
	m.scheduleReleaseScan()
}

// completeJob finishes a running job, frees its nodes, and triggers a new
// scheduling iteration.
func (m *Manager) completeJob(j *job.Job, now sim.Time) {
	re, ok := m.running[j.ID]
	if !ok {
		return
	}
	if err := m.pool.Release(now, re.alloc.ID); err != nil {
		panic(fmt.Sprintf("resmgr %s: completeJob: %v", m.name, err))
	}
	m.runReleaseDrop(re)
	delete(m.running, j.ID)
	m.recycleRun(re)
	if err := j.Advance(job.Completed); err != nil {
		panic(fmt.Sprintf("resmgr %s: completeJob: %v", m.name, err))
	}
	j.EndTime = now
	m.est.Observe(j)
	if uo, ok := m.pol.(policy.UsageObserver); ok {
		uo.ObserveCompletion(j, now)
	}
	m.completed++
	m.obs.JobCompleted(now, j)
	m.foldTerminalPrefix()
	m.RequestIteration()
}

// ---------------------------------------------------------------------------
// cosched.Peer implementation: a Manager can serve directly as the peer of
// another in-process Manager, which is how the coupled simulator wires
// domains by default. The proto package exposes exactly these methods over
// a connection.

var (
	_ cosched.Peer       = (*Manager)(nil)
	_ cosched.CoStarter  = (*Manager)(nil)
	_ cosched.Reconciler = (*Manager)(nil)
)

// tryStartMateAt routes through the CoStarter extension when the peer has
// it, falling back to the plain protocol otherwise.
func tryStartMateAt(p cosched.Peer, id job.ID, at sim.Time) (bool, error) {
	if cs, ok := p.(cosched.CoStarter); ok {
		return cs.TryStartMateAt(id, at)
	}
	return p.TryStartMate(id)
}

// startMateAt routes through the CoStarter extension when the peer has it.
func startMateAt(p cosched.Peer, id job.ID, at sim.Time) error {
	if cs, ok := p.(cosched.CoStarter); ok {
		return cs.StartMateAt(id, at)
	}
	return p.StartMate(id)
}

// notePeerDecision forwards an inbound peer start decision to the optional
// audit observer (the journal, in live mode).
func (m *Manager) notePeerDecision(now sim.Time, method string, id job.ID, ok bool) {
	if po, isPO := m.obs.(PeerDecisionObserver); isPO {
		po.PeerDecision(now, method, id, ok)
	}
}

// PeerName implements cosched.Peer.
func (m *Manager) PeerName() string { return m.name }

// GetMateJob implements cosched.Peer: true if the job is registered here in
// any state.
func (m *Manager) GetMateJob(id job.ID) (bool, error) {
	_, ok := m.jobs[id]
	return ok, nil
}

// GetMateStatus implements cosched.Peer.
func (m *Manager) GetMateStatus(id job.ID) (cosched.MateStatus, error) {
	j, ok := m.jobs[id]
	if !ok {
		return cosched.StatusUnknown, nil
	}
	return cosched.FromJobState(j.State), nil
}

// CanStartMate implements cosched.Peer: reports whether TryStartMate would
// succeed right now, without side effects.
func (m *Manager) CanStartMate(id job.ID) (bool, error) {
	j, ok := m.jobs[id]
	if !ok {
		return false, nil
	}
	switch j.State {
	case job.Queued:
		return m.pool.CanAllocate(j.Nodes), nil
	case job.Holding, job.Running:
		return true, nil
	default:
		return false, nil
	}
}

// TryStartMate implements cosched.Peer: the "additional scheduling
// iteration" of Algorithm 1 line 12, scoped to the mate job. The mate is
// started directly, bypassing its own coscheduling logic — the coordination
// already happened on the caller's side.
func (m *Manager) TryStartMate(id job.ID) (bool, error) {
	return m.TryStartMateAt(id, m.eng.Now())
}

// TryStartMateAt implements cosched.CoStarter: TryStartMate recording the
// caller's proposed co-start instant as the mate's StartTime.
func (m *Manager) TryStartMateAt(id job.ID, at sim.Time) (bool, error) {
	j, ok := m.jobs[id]
	if !ok {
		m.notePeerDecision(m.eng.Now(), "try_start_mate", id, false)
		return false, nil
	}
	now := m.eng.Now()
	started := false
	switch j.State {
	case job.Queued:
		if m.pool.CanAllocate(j.Nodes) {
			j.MarkReady(now)
			m.startJobAt(j, at, now)
			started = j.State == job.Running
		}
	case job.Holding:
		if err := m.startHeldJobAt(j, at, now); err != nil {
			m.notePeerDecision(now, "try_start_mate", id, false)
			return false, err
		}
		started = true
	case job.Running:
		started = true
	}
	m.notePeerDecision(now, "try_start_mate", id, started)
	return started, nil
}

// StartMate implements cosched.Peer: release a holding mate into execution
// (Algorithm 1 line 8). Starting an already-running mate is a no-op.
func (m *Manager) StartMate(id job.ID) error {
	return m.StartMateAt(id, m.eng.Now())
}

// StartMateAt implements cosched.CoStarter: StartMate recording the
// caller's proposed co-start instant as the mate's StartTime.
func (m *Manager) StartMateAt(id job.ID, at sim.Time) error {
	j, ok := m.jobs[id]
	if !ok {
		m.notePeerDecision(m.eng.Now(), "start_mate", id, false)
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	now := m.eng.Now()
	switch j.State {
	case job.Holding:
		err := m.startHeldJobAt(j, at, now)
		m.notePeerDecision(now, "start_mate", id, err == nil)
		return err
	case job.Running:
		m.notePeerDecision(now, "start_mate", id, true)
		return nil
	default:
		m.notePeerDecision(now, "start_mate", id, false)
		return fmt.Errorf("%w: job %d is %s, want holding", ErrBadState, id, j.State)
	}
}

package resmgr

import (
	"errors"
	"testing"

	"cosched/internal/cluster"
	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/policy"
	"cosched/internal/sim"
)

// pairDomains builds two managers on one engine, wired directly as peers.
func pairDomains(t *testing.T, nodesA, nodesB int, cfgA, cfgB cosched.Config) (*sim.Engine, *Manager, *Manager) {
	t.Helper()
	eng := sim.NewEngine()
	a := New(eng, Options{
		Name: "A", Pool: cluster.New("A", nodesA),
		Policy: policy.FCFS{}, Backfilling: true, Cosched: cfgA,
	})
	b := New(eng, Options{
		Name: "B", Pool: cluster.New("B", nodesB),
		Policy: policy.FCFS{}, Backfilling: true, Cosched: cfgB,
	})
	a.AddPeer("B", b)
	b.AddPeer("A", a)
	return eng, a, b
}

func pairJobs(ja, jb *job.Job) {
	ja.Mates = []job.MateRef{{Domain: "B", Job: jb.ID}}
	jb.Mates = []job.MateRef{{Domain: "A", Job: ja.ID}}
}

func submitAll(t *testing.T, m *Manager, jobs ...*job.Job) {
	t.Helper()
	for _, j := range jobs {
		if err := m.SubmitAt(j); err != nil {
			t.Fatalf("%s: submit %d: %v", m.Name(), j.ID, err)
		}
	}
}

func TestSingleJobRuns(t *testing.T) {
	eng, a, _ := pairDomains(t, 100, 100, cosched.Config{}, cosched.Config{})
	j := job.New(1, 50, 10, 600, 600)
	submitAll(t, a, j)
	eng.Run()
	if j.State != job.Completed {
		t.Fatalf("job state = %s, want completed", j.State)
	}
	if j.StartTime != 10 || j.EndTime != 610 {
		t.Fatalf("start=%d end=%d, want 10/610", j.StartTime, j.EndTime)
	}
	if a.Pool().Free() != 100 {
		t.Fatalf("pool not drained: %s", a.Pool())
	}
}

func TestFCFSQueueing(t *testing.T) {
	eng, a, _ := pairDomains(t, 100, 100, cosched.Config{}, cosched.Config{})
	j1 := job.New(1, 80, 0, 1000, 1000)
	j2 := job.New(2, 80, 5, 1000, 1000) // must wait for j1
	submitAll(t, a, j1, j2)
	eng.Run()
	if j2.StartTime != 1000 {
		t.Fatalf("j2 start = %d, want 1000", j2.StartTime)
	}
	if got := j2.WaitTime(); got != 995 {
		t.Fatalf("j2 wait = %d, want 995", got)
	}
}

func TestBackfillThroughManager(t *testing.T) {
	eng, a, _ := pairDomains(t, 100, 100, cosched.Config{}, cosched.Config{})
	j1 := job.New(1, 80, 0, 1000, 1000)
	j2 := job.New(2, 90, 5, 1000, 1000) // blocked until j1 ends
	j3 := job.New(3, 20, 6, 500, 500)   // short; fits beside j1, ends before shadow
	submitAll(t, a, j1, j2, j3)
	eng.Run()
	if j3.StartTime != 6 {
		t.Fatalf("j3 start = %d, want 6 (backfilled)", j3.StartTime)
	}
	if j2.StartTime != 1000 {
		t.Fatalf("j2 start = %d, want 1000 (reservation honored)", j2.StartTime)
	}
}

func TestCoschedulingDisabledIgnoresMates(t *testing.T) {
	eng, a, b := pairDomains(t, 100, 100, cosched.Config{}, cosched.Config{})
	ja := job.New(1, 10, 0, 600, 600)
	jb := job.New(1, 10, 5000, 600, 600)
	pairJobs(ja, jb)
	submitAll(t, a, ja)
	submitAll(t, b, jb)
	eng.Run()
	if ja.StartTime != 0 {
		t.Fatalf("ja start = %d, want 0 (cosched disabled)", ja.StartTime)
	}
	if jb.StartTime != 5000 {
		t.Fatalf("jb start = %d, want 5000", jb.StartTime)
	}
}

func TestHoldThenMateArrivesCoStart(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	ja := job.New(1, 10, 0, 600, 600)
	jb := job.New(1, 10, 300, 600, 600) // arrives 5 min later
	pairJobs(ja, jb)
	submitAll(t, a, ja)
	submitAll(t, b, jb)
	eng.Run()
	if ja.State != job.Completed || jb.State != job.Completed {
		t.Fatalf("states: ja=%s jb=%s", ja.State, jb.State)
	}
	if ja.StartTime != jb.StartTime {
		t.Fatalf("co-start violated: ja=%d jb=%d", ja.StartTime, jb.StartTime)
	}
	if ja.StartTime != 300 {
		t.Fatalf("pair started at %d, want 300 (when jb arrived)", ja.StartTime)
	}
	if ja.HoldCount != 1 {
		t.Fatalf("ja holds = %d, want 1", ja.HoldCount)
	}
	if want := int64(10) * 300; ja.HeldNodeSeconds != want {
		t.Fatalf("ja held node-seconds = %d, want %d", ja.HeldNodeSeconds, want)
	}
	if got := ja.SyncTime(); got != 300 {
		t.Fatalf("ja sync time = %d, want 300", got)
	}
	if got := jb.SyncTime(); got != 0 {
		t.Fatalf("jb sync time = %d, want 0", got)
	}
}

func TestYieldThenTryStartMateCoStart(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Yield)
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	ja := job.New(1, 10, 0, 600, 600)
	jb := job.New(1, 10, 300, 600, 600)
	pairJobs(ja, jb)
	submitAll(t, a, ja)
	submitAll(t, b, jb)
	eng.Run()
	if ja.StartTime != jb.StartTime || ja.StartTime != 300 {
		t.Fatalf("co-start: ja=%d jb=%d, want both 300", ja.StartTime, jb.StartTime)
	}
	// ja was ready at t=0 with an unsubmitted mate: it must have yielded.
	if ja.YieldCount == 0 {
		t.Fatal("ja never yielded")
	}
	// At t=300 jb becomes ready, sees ja queuing, and TryStartMate
	// succeeds: nodes were free because ja yielded rather than held.
	if ja.HoldCount != 0 {
		t.Fatalf("ja held %d times under yield scheme", ja.HoldCount)
	}
	if ja.HeldNodeSeconds != 0 {
		t.Fatalf("yield scheme lost %d node-seconds", ja.HeldNodeSeconds)
	}
}

func TestYieldFreesNodesForOtherJobs(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Yield)
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	ja := job.New(1, 100, 0, 600, 600) // paired, whole machine, mate far away
	jb := job.New(1, 10, 10000, 600, 600)
	pairJobs(ja, jb)
	other := job.New(2, 100, 5, 600, 600) // regular job, whole machine
	submitAll(t, a, ja, other)
	submitAll(t, b, jb)
	eng.Run()
	// other must have run in the slot ja declined.
	if other.StartTime != 5 {
		t.Fatalf("other start = %d, want 5 (yield freed the machine)", other.StartTime)
	}
	if ja.StartTime != jb.StartTime {
		t.Fatalf("pair still co-starts: %d vs %d", ja.StartTime, jb.StartTime)
	}
}

func TestHoldBlocksOtherJobs(t *testing.T) {
	// Contrast with the yield test: a holding job keeps the nodes busy, so
	// the regular job must wait until the pair starts and finishes.
	cfg := cosched.DefaultConfig(cosched.Hold)
	cfg.ReleaseInterval = 0 // keep the hold pinned for the whole gap
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	ja := job.New(1, 100, 0, 600, 600)
	jb := job.New(1, 10, 1000, 600, 600)
	pairJobs(ja, jb)
	other := job.New(2, 100, 5, 600, 600)
	submitAll(t, a, ja, other)
	submitAll(t, b, jb)
	eng.Run()
	if ja.StartTime != 1000 || jb.StartTime != 1000 {
		t.Fatalf("pair start = %d/%d, want 1000", ja.StartTime, jb.StartTime)
	}
	if other.StartTime != 1600 {
		t.Fatalf("other start = %d, want 1600 (after the held pair ran)", other.StartTime)
	}
}

func TestMateAlreadyHoldingStartsBoth(t *testing.T) {
	// B ready first and holds; when A's job is scheduled it sees
	// StatusHolding and releases both (Algorithm 1 lines 6–8).
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	ja := job.New(1, 10, 500, 600, 600)
	jb := job.New(1, 10, 0, 600, 600)
	pairJobs(ja, jb)
	submitAll(t, a, ja)
	submitAll(t, b, jb)
	eng.Run()
	if jb.HoldCount != 1 {
		t.Fatalf("jb holds = %d, want 1", jb.HoldCount)
	}
	if ja.StartTime != 500 || jb.StartTime != 500 {
		t.Fatalf("starts = %d/%d, want 500/500", ja.StartTime, jb.StartTime)
	}
}

func TestUnknownMateStartsNormally(t *testing.T) {
	// Mate references a job B never heard of → GetMateJob false → start.
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng, a, _ := pairDomains(t, 100, 100, cfg, cfg)
	ja := job.New(1, 10, 0, 600, 600)
	ja.Mates = []job.MateRef{{Domain: "B", Job: 999}}
	submitAll(t, a, ja)
	eng.Run()
	if ja.StartTime != 0 || ja.State != job.Completed {
		t.Fatalf("unknown mate: start=%d state=%s, want 0/completed", ja.StartTime, ja.State)
	}
}

func TestNoPeerStartsNormally(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng, a, _ := pairDomains(t, 100, 100, cfg, cfg)
	ja := job.New(1, 10, 0, 600, 600)
	ja.Mates = []job.MateRef{{Domain: "nonexistent", Job: 1}}
	submitAll(t, a, ja)
	eng.Run()
	if ja.State != job.Completed {
		t.Fatalf("state = %s, want completed", ja.State)
	}
}

// failingPeer simulates a crashed remote domain: every call errors.
type failingPeer struct{}

func (failingPeer) PeerName() string                { return "down" }
func (failingPeer) GetMateJob(job.ID) (bool, error) { return false, errors.New("down") }
func (failingPeer) GetMateStatus(job.ID) (cosched.MateStatus, error) {
	return cosched.StatusUnknown, errors.New("down")
}
func (failingPeer) CanStartMate(job.ID) (bool, error) { return false, errors.New("down") }
func (failingPeer) TryStartMate(job.ID) (bool, error) { return false, errors.New("down") }
func (failingPeer) StartMate(job.ID) error            { return errors.New("down") }

func TestDeadPeerFaultTolerance(t *testing.T) {
	// §IV-C: "a job will not wait forever when the remote machine ... is
	// down". The ready job must start immediately.
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng := sim.NewEngine()
	a := New(eng, Options{Name: "A", Pool: cluster.New("A", 100), Cosched: cfg})
	a.AddPeer("B", failingPeer{})
	ja := job.New(1, 10, 0, 600, 600)
	ja.Mates = []job.MateRef{{Domain: "B", Job: 1}}
	submitAll(t, a, ja)
	eng.Run()
	if ja.StartTime != 0 || ja.State != job.Completed {
		t.Fatalf("dead peer: start=%d state=%s, want immediate start", ja.StartTime, ja.State)
	}
}

func TestMateCompletedStartsNormally(t *testing.T) {
	// The mate already ran to completion (fault-tolerance fallback):
	// the local job starts without coordination.
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	ja := job.New(1, 10, 5000, 600, 600)
	jb := job.New(1, 10, 0, 600, 600)
	// Pair asymmetrically: only ja knows about jb, so jb runs normally.
	ja.Mates = []job.MateRef{{Domain: "B", Job: jb.ID}}
	submitAll(t, a, ja)
	submitAll(t, b, jb)
	eng.Run()
	if jb.EndTime != 600 {
		t.Fatalf("jb end = %d, want 600", jb.EndTime)
	}
	if ja.StartTime != 5000 {
		t.Fatalf("ja start = %d, want 5000 (mate completed)", ja.StartTime)
	}
}

func TestMaxHeldFractionForcesYield(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	cfg.MaxHeldFraction = 0.5
	cfg.ReleaseInterval = 0 // keep ja1's hold pinned so the cap stays binding
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	// Two paired jobs on A whose mates are far in the future; the first
	// (40 nodes) may hold, the second (40 nodes) would push held to 80%
	// and must yield instead.
	ja1 := job.New(1, 40, 0, 600, 600)
	ja2 := job.New(2, 40, 0, 600, 600)
	jb1 := job.New(1, 10, 50000, 600, 600)
	jb2 := job.New(2, 10, 50000, 600, 600)
	pairJobs(ja1, jb1)
	pairJobs(ja2, jb2)
	submitAll(t, a, ja1, ja2)
	submitAll(t, b, jb1, jb2)
	eng.Run()
	if ja1.HoldCount == 0 {
		t.Fatal("ja1 never held")
	}
	if ja2.HoldCount != 0 {
		t.Fatalf("ja2 held %d times despite the 50%% cap", ja2.HoldCount)
	}
	if ja2.YieldCount == 0 {
		t.Fatal("ja2 never yielded")
	}
}

func TestMaxYieldsEscalatesToHold(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Yield)
	cfg.MaxYields = 2
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	ja := job.New(1, 10, 0, 600, 600)
	jb := job.New(1, 10, 7200, 600, 600) // two hours away
	pairJobs(ja, jb)
	// Churn jobs keep triggering scheduling iterations so ja re-yields.
	churn := []*job.Job{
		job.New(10, 90, 60, 300, 300),
		job.New(11, 90, 600, 300, 300),
		job.New(12, 90, 1200, 300, 300),
	}
	submitAll(t, a, append([]*job.Job{ja}, churn...)...)
	submitAll(t, b, jb)
	eng.Run()
	if ja.YieldCount < 2 {
		t.Fatalf("ja yields = %d, want ≥ 2", ja.YieldCount)
	}
	if ja.HoldCount == 0 {
		t.Fatal("ja never escalated to hold after MaxYields")
	}
	if ja.StartTime != jb.StartTime {
		t.Fatalf("co-start violated: %d vs %d", ja.StartTime, jb.StartTime)
	}
}

func TestSubmitDuplicateRejected(t *testing.T) {
	eng, a, _ := pairDomains(t, 10, 10, cosched.Config{}, cosched.Config{})
	_ = eng
	j1 := job.New(1, 1, 0, 10, 10)
	j2 := job.New(1, 2, 0, 10, 10) // same ID, different job
	if err := a.Expect(j1); err != nil {
		t.Fatal(err)
	}
	if err := a.Expect(j2); !errors.Is(err, ErrDuplicateJob) {
		t.Fatalf("err = %v, want ErrDuplicateJob", err)
	}
	if err := a.Submit(j2); !errors.Is(err, ErrDuplicateJob) {
		t.Fatalf("submit err = %v, want ErrDuplicateJob", err)
	}
}

func TestPeerStatusQueries(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng, a, _ := pairDomains(t, 100, 100, cfg, cfg)
	j := job.New(7, 10, 100, 600, 600)
	if err := a.Expect(j); err != nil {
		t.Fatal(err)
	}
	if st, _ := a.GetMateStatus(7); st != cosched.StatusUnsubmitted {
		t.Fatalf("status = %s, want unsubmitted", st)
	}
	if known, _ := a.GetMateJob(7); !known {
		t.Fatal("expected job not known")
	}
	if known, _ := a.GetMateJob(99); known {
		t.Fatal("unknown job reported known")
	}
	if st, _ := a.GetMateStatus(99); st != cosched.StatusUnknown {
		t.Fatalf("status = %s, want unknown", st)
	}
	// Drive to completion and check terminal status.
	if _, err := eng.At(100, sim.PrioritySubmit, func(sim.Time) { _ = a.Submit(j) }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if st, _ := a.GetMateStatus(7); st != cosched.StatusCompleted {
		t.Fatalf("status = %s, want completed", st)
	}
}

func TestTryStartMateInsufficientNodes(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng, a, _ := pairDomains(t, 100, 100, cfg, cfg)
	blocker := job.New(1, 100, 0, 10000, 10000)
	waiting := job.New(2, 50, 5, 600, 600)
	submitAll(t, a, blocker, waiting)
	eng.RunUntil(100)
	if ok, _ := a.CanStartMate(2); ok {
		t.Fatal("CanStartMate true with a full machine")
	}
	if ok, _ := a.TryStartMate(2); ok {
		t.Fatal("TryStartMate succeeded with a full machine")
	}
	if waiting.State != job.Queued {
		t.Fatalf("state = %s, want queued", waiting.State)
	}
}

func TestStartMateWrongState(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	_, a, _ := pairDomains(t, 100, 100, cfg, cfg)
	j := job.New(1, 10, 0, 600, 600)
	if err := a.Expect(j); err != nil {
		t.Fatal(err)
	}
	if err := a.StartMate(1); !errors.Is(err, ErrBadState) {
		t.Fatalf("err = %v, want ErrBadState", err)
	}
	if err := a.StartMate(42); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
}

func TestNWayGroupCoStart(t *testing.T) {
	// Three domains; a 3-way group must start simultaneously (the
	// paper's future-work extension).
	eng := sim.NewEngine()
	cfg := cosched.DefaultConfig(cosched.Hold)
	names := []string{"A", "B", "C"}
	mgrs := make(map[string]*Manager, 3)
	for _, n := range names {
		mgrs[n] = New(eng, Options{Name: n, Pool: cluster.New(n, 100), Cosched: cfg})
	}
	for _, x := range names {
		for _, y := range names {
			if x != y {
				mgrs[x].AddPeer(y, mgrs[y])
			}
		}
	}
	jobs := map[string]*job.Job{
		"A": job.New(1, 10, 0, 600, 600),
		"B": job.New(1, 10, 400, 600, 600),
		"C": job.New(1, 10, 900, 600, 600),
	}
	for _, x := range names {
		for _, y := range names {
			if x != y {
				jobs[x].Mates = append(jobs[x].Mates, job.MateRef{Domain: y, Job: jobs[y].ID})
			}
		}
	}
	for _, n := range names {
		if err := mgrs[n].SubmitAt(jobs[n]); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	for _, n := range names {
		if jobs[n].State != job.Completed {
			t.Fatalf("%s job state = %s", n, jobs[n].State)
		}
	}
	if jobs["A"].StartTime != 900 || jobs["B"].StartTime != 900 || jobs["C"].StartTime != 900 {
		t.Fatalf("starts = %d/%d/%d, want all 900",
			jobs["A"].StartTime, jobs["B"].StartTime, jobs["C"].StartTime)
	}
}

func TestIterationsCounted(t *testing.T) {
	eng, a, _ := pairDomains(t, 100, 100, cosched.Config{}, cosched.Config{})
	submitAll(t, a, job.New(1, 10, 0, 600, 600))
	eng.Run()
	if a.Iterations() == 0 {
		t.Fatal("no scheduling iterations recorded")
	}
}

func TestHoldBudgetRefusesExcessHolds(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	cfg.ReleaseInterval = 0 // keep holds pinned so the budget stays binding
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	a.SetHoldBudget(1) // degraded mode: at most one concurrent hold
	// Three small paired jobs on A whose mates are far away: all three
	// would hold under the scheme, but only the first fits the budget.
	var jas []*job.Job
	for i := job.ID(1); i <= 3; i++ {
		ja := job.New(i, 10, 0, 600, 600)
		jb := job.New(i, 10, 50000, 600, 600)
		pairJobs(ja, jb)
		submitAll(t, a, ja)
		submitAll(t, b, jb)
		jas = append(jas, ja)
	}
	eng.Run()
	if jas[0].HoldCount == 0 {
		t.Fatal("first job never held: the budget must allow holds up to the cap")
	}
	for _, ja := range jas[1:] {
		if ja.HoldCount != 0 {
			t.Fatalf("job %d held despite the budget of 1", ja.ID)
		}
		if ja.YieldCount == 0 {
			t.Fatalf("job %d never yielded; refused holds must degrade to yields", ja.ID)
		}
	}
	if a.HoldsRefused() == 0 {
		t.Fatal("HoldsRefused = 0, want the budget's refusals counted")
	}
	if b.HoldsRefused() != 0 {
		t.Fatalf("B refused %d holds with no budget set", b.HoldsRefused())
	}
}

// Crash-recovery support for the Manager: re-installing journaled jobs into
// a freshly constructed manager (RestoreJob) and the post-restart mate
// reconciliation handshake (ReconcileMates as callee, ReconcileWith as
// caller) that resolves pairs orphaned by the crash per the paper's fault
// tolerance rules. All of it runs on the engine's single thread, before or
// between scheduling iterations.

package resmgr

import (
	"fmt"
	"sort"

	"cosched/internal/cluster"
	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/sim"
)

// RestoreJob re-installs a journal-recovered job in its recorded state:
// queued jobs re-enter the queue, holding jobs re-acquire held allocations
// (preserving their recorded HoldStart, so the release-scan clock survives
// the restart), running jobs re-acquire run allocations with completion
// scheduled at max(now, StartTime+Runtime), and terminal jobs feed the
// counters. No Observer notifications fire — the journal already holds
// these transitions, and re-journaling them would duplicate the log the
// restore was built from. The caller requests an iteration after the batch.
func (m *Manager) RestoreJob(j *job.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if _, dup := m.jobs[j.ID]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateJob, j.ID)
	}
	now := m.eng.Now()
	switch j.State {
	case job.Unsubmitted:
		m.addJob(j)
	case job.Queued:
		m.addJob(j)
		m.enqueue(j)
	case job.Holding:
		alloc, err := m.pool.Allocate(now, j.Nodes, cluster.AllocHold)
		if err != nil {
			return fmt.Errorf("restore hold for job %d: %w", j.ID, err)
		}
		m.addJob(j)
		m.holding[j.ID] = &holdEntry{alloc: alloc}
		m.scheduleReleaseScan()
	case job.Running:
		alloc, err := m.pool.Allocate(now, j.Nodes, cluster.AllocRun)
		if err != nil {
			return fmt.Errorf("restore run for job %d: %w", j.ID, err)
		}
		m.addJob(j)
		entry := &runEntry{alloc: alloc}
		m.runReleaseAdd(entry, j)
		end := j.StartTime + sim.Time(j.Runtime)
		if end < now {
			// The job finished while the daemon was down; complete it at
			// the first opportunity rather than rewinding the clock.
			end = now
		}
		ref, err := m.eng.AtArg(end, sim.PriorityEnd, m.completeFn, j)
		if err != nil {
			return fmt.Errorf("restore completion for job %d: %w", j.ID, err)
		}
		entry.end = ref
		m.running[j.ID] = entry
	case job.Completed:
		m.addJob(j)
		m.completed++
	case job.Cancelled:
		m.addJob(j)
		m.cancelled++
	default:
		return fmt.Errorf("%w: job %d is %s", ErrBadState, j.ID, j.State)
	}
	return nil
}

// releaseHold returns one holding job to the queue (outside the periodic
// release scan): nodes freed, held time accrued, job requeued without the
// demotion the scan applies. Used by reconciliation when the mate no longer
// knows the job — it re-enters Run_Job on the next iteration, where the
// unknown mate now means "start normally".
func (m *Manager) releaseHold(j *job.Job, now sim.Time) {
	he, ok := m.holding[j.ID]
	if !ok {
		return
	}
	j.HeldNodeSeconds += int64(he.alloc.Allocated) * (now - j.HoldStart)
	if err := m.pool.Release(now, he.alloc.ID); err != nil {
		panic(fmt.Sprintf("resmgr %s: reconcile release: %v", m.name, err))
	}
	delete(m.holding, j.ID)
	if err := j.Advance(job.Queued); err != nil {
		panic(fmt.Sprintf("resmgr %s: reconcile release: %v", m.name, err))
	}
	m.enqueue(j)
	m.obs.JobReleased(now, j, true)
	m.scheduleReleaseScan()
	m.RequestIteration()
}

// mateViews reports this manager's side of every pair shared with the named
// domain, sorted by local job ID for deterministic exchanges.
func (m *Manager) mateViews(domain string) []cosched.MateView {
	ids := make([]job.ID, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var out []cosched.MateView
	for _, id := range ids {
		j := m.jobs[id]
		for _, ref := range j.Mates {
			if ref.Domain != domain {
				continue
			}
			v := cosched.MateView{
				Local:  j.ID,
				Mate:   ref.Job,
				Status: cosched.FromJobState(j.State),
			}
			if j.State == job.Running || j.State == job.Completed {
				v.Start = j.StartTime
			}
			out = append(out, v)
		}
	}
	return out
}

// DrainViews builds the shutdown notification for each peer domain: every
// non-terminal paired job reported as StatusUnknown, so a remote holder
// waiting on one of our jobs falls back immediately (release, re-enter
// Run_Job, start normally against our dead daemon) instead of waiting out
// its release interval. Domains iterate in sorted order.
func (m *Manager) DrainViews() map[string][]cosched.MateView {
	ids := make([]job.ID, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	out := make(map[string][]cosched.MateView)
	for _, id := range ids {
		j := m.jobs[id]
		if j.State == job.Completed || j.State == job.Cancelled {
			continue
		}
		for _, ref := range j.Mates {
			out[ref.Domain] = append(out[ref.Domain], cosched.MateView{
				Local:  j.ID,
				Mate:   ref.Job,
				Status: cosched.StatusUnknown,
			})
		}
	}
	return out
}

// ReconcileMates implements cosched.Reconciler (the callee side): apply the
// caller's views to our holds, then report our current views back.
//
// For each of our holds paired into the calling domain:
//   - the caller doesn't report the mate (or reports unknown) — the mate is
//     lost; release the hold so Run_Job's fault tolerance takes over;
//   - the mate is already running or completed — start now, adopting the
//     mate's recorded start instant so the pair's log stays byte-exact;
//   - the mate is holding too — keep holding; only the caller resolves
//     both-holding, so exactly one resolver proposes the co-start instant;
//   - the mate is queued or unsubmitted — keep holding, it is still coming.
//
// The exchange is idempotent: every action moves state toward agreement and
// repeats as a no-op, so peerlink may retry it safely.
func (m *Manager) ReconcileMates(from string, views []cosched.MateView) ([]cosched.MateView, error) {
	now := m.eng.Now()
	type pairKey struct{ local, mate job.ID }
	reported := make(map[pairKey]cosched.MateView, len(views))
	for _, v := range views {
		// The caller's Local is our Mate and vice versa.
		reported[pairKey{local: v.Mate, mate: v.Local}] = v
	}
	for _, ours := range m.mateViews(from) {
		j := m.jobs[ours.Local]
		if j == nil || j.State != job.Holding {
			continue
		}
		rv, known := reported[pairKey{local: ours.Local, mate: ours.Mate}]
		switch {
		case !known || rv.Status == cosched.StatusUnknown:
			m.releaseHold(j, now)
		case rv.Status == cosched.StatusRunning || rv.Status == cosched.StatusCompleted:
			if err := m.startHeldJobAt(j, rv.Start, now); err != nil {
				return nil, fmt.Errorf("reconcile adopt start for job %d: %w", j.ID, err)
			}
			m.RequestIteration()
		}
	}
	return m.mateViews(from), nil
}

// ReconcileReport summarizes one caller-side reconciliation exchange.
type ReconcileReport struct {
	Peer     string // remote domain
	Sent     int    // pair views we reported
	CoStarts int    // both sides holding → co-started at one instant
	Adopted  int    // mate already running/completed → its instant adopted
	Released int    // mate lost our job → hold released to the queue
	Kept     int    // mate still coming → hold kept
}

// ReconcileWith drives the caller side of the reconciliation handshake with
// one peer: exchange views, then resolve every local hold against the
// mate's answer. Both-holding pairs co-start at this manager's current
// instant, proposed to the peer through the CoStarter extension so both
// logs record the identical start time.
func (m *Manager) ReconcileWith(domain string, p cosched.Peer) (ReconcileReport, error) {
	rep := ReconcileReport{Peer: domain}
	r, ok := p.(cosched.Reconciler)
	if !ok {
		return rep, fmt.Errorf("resmgr %s: peer %q does not support reconciliation", m.name, domain)
	}
	views := m.mateViews(domain)
	rep.Sent = len(views)
	resp, err := r.ReconcileMates(m.name, views)
	if err != nil {
		return rep, err
	}
	type pairKey struct{ local, mate job.ID }
	theirs := make(map[pairKey]cosched.MateView, len(resp))
	for _, v := range resp {
		theirs[pairKey{local: v.Mate, mate: v.Local}] = v
	}
	now := m.eng.Now()
	changed := false
	for _, ours := range views {
		j := m.jobs[ours.Local]
		if j == nil || j.State != job.Holding {
			continue
		}
		rv, known := theirs[pairKey{local: ours.Local, mate: ours.Mate}]
		switch {
		case !known || rv.Status == cosched.StatusUnknown:
			m.releaseHold(j, now)
			rep.Released++
		case rv.Status == cosched.StatusHolding:
			// Both sides held through the crash: co-start now. Our clock is
			// the proposed instant; the peer records it verbatim.
			if err := startMateAt(p, ours.Mate, now); err != nil {
				rep.Kept++ // peer unreachable mid-handshake; retry later
				continue
			}
			if err := m.startHeldJobAt(j, now, now); err != nil {
				return rep, fmt.Errorf("reconcile co-start of job %d: %w", j.ID, err)
			}
			rep.CoStarts++
			changed = true
		case rv.Status == cosched.StatusRunning || rv.Status == cosched.StatusCompleted:
			if err := m.startHeldJobAt(j, rv.Start, now); err != nil {
				return rep, fmt.Errorf("reconcile adopt start for job %d: %w", j.ID, err)
			}
			rep.Adopted++
			changed = true
		default:
			rep.Kept++
		}
	}
	if changed {
		m.RequestIteration()
	}
	return rep, nil
}

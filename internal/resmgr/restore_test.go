package resmgr

import (
	"fmt"
	"testing"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/sim"
)

// held fabricates a journal-recovered holding job, the way replay would
// hand it to RestoreJob after a crash.
func held(id job.ID, nodes int, mateDomain string, mate job.ID, holdStart sim.Time) *job.Job {
	j := job.New(id, nodes, 0, 600, 600)
	j.Mates = []job.MateRef{{Domain: mateDomain, Job: mate}}
	j.State = job.Holding
	j.HoldStart = holdStart
	j.HoldCount = 1
	j.EverReady = true
	j.FirstReadyTime = holdStart
	return j
}

func restoreAll(t *testing.T, m *Manager, jobs ...*job.Job) {
	t.Helper()
	for _, j := range jobs {
		if err := m.RestoreJob(j); err != nil {
			t.Fatalf("%s: restore %d: %v", m.Name(), j.ID, err)
		}
	}
}

func TestReconcileBothHoldingCoStartsAtOneInstant(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	ja := held(1, 10, "B", 1, 0)
	jb := held(1, 10, "A", 1, 30)
	restoreAll(t, a, ja)
	restoreAll(t, b, jb)
	eng.RunUntil(100)

	rep, err := a.ReconcileWith("B", b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoStarts != 1 || rep.Released != 0 || rep.Adopted != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if ja.State != job.Running || jb.State != job.Running {
		t.Fatalf("states: %s / %s", ja.State, jb.State)
	}
	// The caller's clock is the one agreed instant, recorded verbatim on
	// both sides — the byte-exact co-start the event log verifier checks.
	if ja.StartTime != 100 || jb.StartTime != 100 {
		t.Fatalf("starts: %d / %d, want 100/100", ja.StartTime, jb.StartTime)
	}
	// Held time accrued up to the co-start on both sides.
	if ja.HeldNodeSeconds != 10*100 || jb.HeldNodeSeconds != 10*70 {
		t.Fatalf("held node-seconds: %d / %d", ja.HeldNodeSeconds, jb.HeldNodeSeconds)
	}
	eng.Run()
	if ja.State != job.Completed || jb.State != job.Completed {
		t.Fatalf("final states: %s / %s", ja.State, jb.State)
	}
}

func TestReconcileReleasesHoldForLostMate(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	ja := held(1, 10, "B", 1, 0) // B has no record of job 1
	restoreAll(t, a, ja)
	eng.RunUntil(50)

	rep, err := a.ReconcileWith("B", b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Released != 1 || rep.CoStarts != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if ja.State != job.Queued {
		t.Fatalf("state = %s, want queued", ja.State)
	}
	if ja.HeldNodeSeconds != 10*50 {
		t.Fatalf("held node-seconds = %d, want 500", ja.HeldNodeSeconds)
	}
	if free := a.Pool().Free(); free != 100 {
		t.Fatalf("pool free = %d after release", free)
	}
	// Back in the queue, Run_Job's fault tolerance sees an unknown mate
	// and starts the job normally.
	eng.Run()
	if ja.State != job.Completed {
		t.Fatalf("final state = %s", ja.State)
	}
	if ja.StartTime != 50 {
		t.Fatalf("start = %d, want 50 (started at the next iteration)", ja.StartTime)
	}
}

func TestReconcileKeepsHoldForQueuedMate(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	ja := held(1, 10, "B", 1, 0)
	jb := job.New(1, 10, 0, 600, 600)
	jb.Mates = []job.MateRef{{Domain: "A", Job: 1}}
	jb.State = job.Queued
	restoreAll(t, a, ja)
	restoreAll(t, b, jb)
	eng.RunUntil(40)

	rep, err := a.ReconcileWith("B", b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kept != 1 || rep.Released != 0 || rep.CoStarts != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if ja.State != job.Holding {
		t.Fatalf("state = %s, want holding (mate still coming)", ja.State)
	}
	// The normal path then co-starts the pair when B's queue drains.
	eng.Run()
	if ja.State != job.Completed || jb.State != job.Completed {
		t.Fatalf("final states: %s / %s", ja.State, jb.State)
	}
	if ja.StartTime != jb.StartTime {
		t.Fatalf("co-start violated: %d vs %d", ja.StartTime, jb.StartTime)
	}
}

func TestReconcileAdoptsRunningMateInstant(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	ja := held(1, 10, "B", 1, 0)
	jb := job.New(1, 10, 0, 600, 600)
	jb.Mates = []job.MateRef{{Domain: "A", Job: 1}}
	jb.State = job.Running
	jb.StartTime = 50 // the mate fell back and started while we were down
	restoreAll(t, a, ja)
	eng.RunUntil(60)
	restoreAll(t, b, jb)
	eng.RunUntil(120)

	rep, err := a.ReconcileWith("B", b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Adopted != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if ja.State != job.Running {
		t.Fatalf("state = %s, want running", ja.State)
	}
	// The mate's recorded instant is adopted so both logs agree, even
	// though our job physically started at t=120.
	if ja.StartTime != 50 {
		t.Fatalf("start = %d, want 50 (adopted)", ja.StartTime)
	}
	eng.Run()
	if ja.State != job.Completed || jb.State != job.Completed {
		t.Fatalf("final states: %s / %s", ja.State, jb.State)
	}
}

func TestReconcileCalleeReleasesWhenCallerLostJob(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	// B holds for A's job 1, but A's journal lost it entirely.
	jb := held(1, 10, "A", 1, 0)
	restoreAll(t, b, jb)
	eng.RunUntil(25)

	rep, err := a.ReconcileWith("B", b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 0 {
		t.Fatalf("caller sent %d views, want 0", rep.Sent)
	}
	// The callee applied the absence: its orphaned hold is released.
	if jb.State != job.Queued {
		t.Fatalf("callee hold state = %s, want queued", jb.State)
	}
	eng.Run()
	if jb.State != job.Completed {
		t.Fatalf("final state = %s", jb.State)
	}
}

func TestReconcileIsIdempotent(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
	ja := held(1, 10, "B", 1, 0)
	jb := held(1, 10, "A", 1, 0)
	restoreAll(t, a, ja)
	restoreAll(t, b, jb)
	eng.RunUntil(100)

	for i := 0; i < 3; i++ {
		rep, err := a.ReconcileWith("B", b)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if i == 0 && rep.CoStarts != 1 {
			t.Fatalf("first round: %+v", rep)
		}
		if i > 0 && (rep.CoStarts != 0 || rep.Released != 0 || rep.Adopted != 0) {
			t.Fatalf("round %d not a no-op: %+v", i, rep)
		}
	}
	if ja.StartTime != 100 || jb.StartTime != 100 {
		t.Fatalf("starts drifted: %d / %d", ja.StartTime, jb.StartTime)
	}
}

func TestDrainViewsReportsNonTerminalPairs(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	_, a, _ := pairDomains(t, 100, 100, cfg, cfg)
	holding := held(1, 10, "B", 1, 0)
	queued := job.New(2, 10, 0, 600, 600)
	queued.Mates = []job.MateRef{{Domain: "B", Job: 2}}
	queued.State = job.Queued
	done := job.New(3, 10, 0, 600, 600)
	done.Mates = []job.MateRef{{Domain: "B", Job: 3}}
	done.State = job.Completed
	plain := job.New(4, 10, 0, 600, 600) // unpaired: never reported
	plain.State = job.Queued
	restoreAll(t, a, holding, queued, done, plain)

	views := a.DrainViews()
	got, ok := views["B"]
	if !ok || len(views) != 1 {
		t.Fatalf("views: %+v", views)
	}
	if len(got) != 2 {
		t.Fatalf("reported %d pairs, want 2 (holding + queued)", len(got))
	}
	for _, v := range got {
		if v.Status != cosched.StatusUnknown {
			t.Fatalf("drain view status = %s, want unknown", v.Status)
		}
	}
	if got[0].Local != 1 || got[1].Local != 2 {
		t.Fatalf("drain views out of order: %+v", got)
	}
}

func TestRestoreJobRejectsDuplicatesAndOverflow(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	_, a, _ := pairDomains(t, 16, 16, cfg, cfg)
	j := held(1, 10, "B", 1, 0)
	restoreAll(t, a, j)
	if err := a.RestoreJob(held(1, 4, "B", 1, 0)); err == nil {
		t.Fatal("duplicate restore accepted")
	}
	// Only 6 nodes left: a second 10-node hold cannot be re-acquired.
	if err := a.RestoreJob(held(2, 10, "B", 2, 0)); err == nil {
		t.Fatal("over-capacity restore accepted")
	}
}

func TestRestoreRunningJobPastDeadlineCompletesImmediately(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	eng, a, _ := pairDomains(t, 100, 100, cfg, cfg)
	eng.RunUntil(1000)
	j := job.New(1, 10, 0, 600, 600)
	j.State = job.Running
	j.StartTime = 100 // would have finished at 700, before the restart
	restoreAll(t, a, j)
	eng.Run()
	if j.State != job.Completed {
		t.Fatalf("state = %s", j.State)
	}
	if j.EndTime != 1000 {
		t.Fatalf("end = %d, want 1000 (completed at restart, not rewound)", j.EndTime)
	}
}

// TestReconcileBothDaemonsRestartSimultaneously models the coupled-outage
// recovery: both daemons come back from their journals at once and each
// initiates reconciliation with the other (the order is a race). Whatever
// the order, the pass that runs first settles every pair and the reverse
// pass must be a pure no-op, and the co-start instants recorded on the two
// sides must be byte-identical — run both orderings on identical worlds
// and compare the full tables.
func TestReconcileBothDaemonsRestartSimultaneously(t *testing.T) {
	type world struct {
		eng  *sim.Engine
		a, b *Manager
	}
	build := func() world {
		cfg := cosched.DefaultConfig(cosched.Hold)
		eng, a, b := pairDomains(t, 100, 100, cfg, cfg)
		// A mixed restored state: pair 1 both holding, pair 2 holding
		// against a still-queued mate, pair 3 holding against a mate the
		// other journal lost.
		restoreAll(t, a, held(1, 10, "B", 1, 0), held(2, 10, "B", 2, 10), held(3, 10, "B", 3, 20))
		jb1 := held(1, 10, "A", 1, 30)
		jb2 := job.New(2, 10, 0, 600, 600)
		jb2.Mates = []job.MateRef{{Domain: "A", Job: 2}}
		restoreAll(t, b, jb1, jb2)
		eng.RunUntil(100)
		return world{eng, a, b}
	}

	run := func(w world, aFirst bool) {
		t.Helper()
		order := []func() (ReconcileReport, error){
			func() (ReconcileReport, error) { return w.a.ReconcileWith("B", w.b) },
			func() (ReconcileReport, error) { return w.b.ReconcileWith("A", w.a) },
		}
		if !aFirst {
			order[0], order[1] = order[1], order[0]
		}
		first, err := order[0]()
		if err != nil {
			t.Fatal(err)
		}
		// Pair 1 co-starts on the first pass whoever initiates. (Pair 3's
		// release lands on the caller side in one order and the callee
		// side in the other, so it is asserted on final state below.)
		if first.CoStarts != 1 {
			t.Fatalf("first pass report: %+v, want 1 co-start (pair 1)", first)
		}
		second, err := order[1]()
		if err != nil {
			t.Fatal(err)
		}
		if second.CoStarts != 0 || second.Released != 0 || second.Adopted != 0 {
			t.Fatalf("reverse pass changed state: %+v", second)
		}
	}

	snapshot := func(w world) string {
		var s string
		for _, m := range []*Manager{w.a, w.b} {
			for _, j := range m.JobsOrdered() {
				s += fmt.Sprintf("%s/%d:%s@%d;", m.Name(), j.ID, j.State, j.StartTime)
			}
		}
		return s
	}

	w1, w2 := build(), build()
	run(w1, true)
	run(w2, false)

	// The settled pair co-started at one instant on both sides.
	for _, w := range []world{w1, w2} {
		ja, _ := w.a.Job(1)
		jb, _ := w.b.Job(1)
		if ja.State != job.Running || jb.State != job.Running || ja.StartTime != jb.StartTime {
			t.Fatalf("pair 1: %s@%d / %s@%d, want both running at one instant",
				ja.State, ja.StartTime, jb.State, jb.StartTime)
		}
		// Pair 2's mate is still queued: the hold survives reconciliation.
		if j, _ := w.a.Job(2); j.State != job.Holding {
			t.Fatalf("pair 2 on A: %s, want still holding", j.State)
		}
		// Pair 3's mate is gone from B's journal: the hold is released.
		if j, _ := w.a.Job(3); j.State != job.Queued {
			t.Fatalf("pair 3 on A: %s, want released back to queuing", j.State)
		}
	}

	// Initiation order must not change a single byte of the tables.
	if s1, s2 := snapshot(w1), snapshot(w2); s1 != s2 {
		t.Fatalf("tables diverge with initiation order:\nA-first: %s\nB-first: %s", s1, s2)
	}
}

package resmgr

import (
	"fmt"
	"io"

	"cosched/internal/job"
	"cosched/internal/metrics"
	"cosched/internal/sim"
)

// JobSource is a pull source of jobs in submit-time order, ending with
// io.EOF — the same shape as trace.JobStream and workload's iterators, so
// a parsed SWF stream or a synthetic repeater plugs in directly.
type JobSource interface {
	NextJob() (*job.Job, error)
}

// DefaultStreamWindow is the look-ahead used when SubmitTraceStream is
// given a non-positive window.
const DefaultStreamWindow = 4096

// SubmitTraceStream is SubmitTrace fed from a cursor window over a job
// stream instead of a materialized slice: at most `window` upcoming jobs
// are registered ahead of the replay cursor, and terminal jobs are folded
// into a streaming metrics collector and evicted from the registry, so a
// simulation's memory tracks the window plus the live job population —
// independent of trace length.
//
// Equivalence contract: on a trace that could be materialized, the
// simulation is byte-identical to SubmitTrace provided every mate
// reference resolves before its partner first attempts to run — i.e. the
// window covers the maximum submit-index skew between paired jobs (an
// unregistered mate is indistinguishable from an unknown one, which
// changes hold/yield coordination). Evicting terminal jobs is always
// behavior-neutral: peers treat completed and cancelled mates exactly like
// unknown ones (start normally, no constraint).
//
// A mid-run source error (parse failure, ordering violation, oversized
// job) stops further submissions and is reported by StreamErr; already
// submitted jobs keep running.
//
// Call once per manager, before the run starts; mutually exclusive with
// SubmitTrace.
func (m *Manager) SubmitTraceStream(src JobSource, window int) error {
	if m.replay != nil || m.streaming {
		return fmt.Errorf("resmgr %s: trace already submitted", m.name)
	}
	if src == nil {
		return fmt.Errorf("resmgr %s: nil job source", m.name)
	}
	if window <= 0 {
		window = DefaultStreamWindow
	}
	m.streaming = true
	m.src = src
	m.streamWindow = window
	m.collector = metrics.NewCollector(m.name)
	if err := m.refillStream(); err != nil {
		return err
	}
	m.armReplay()
	return nil
}

// refillStream pulls jobs from the source until the look-ahead window is
// full (or the source drains), registering each with Expect, and compacts
// the replay slice once the cursor has consumed half of it.
func (m *Manager) refillStream() error {
	for !m.srcDone && len(m.replay)-m.replayIdx < m.streamWindow {
		j, err := m.src.NextJob()
		if err == io.EOF {
			m.srcDone = true
			break
		}
		if err != nil {
			return fmt.Errorf("resmgr %s: trace stream: %w", m.name, err)
		}
		if m.streamStarted && j.SubmitTime < m.lastStreamSubmit {
			return fmt.Errorf("resmgr %s: trace stream not sorted by submit time: job %d at t=%d after t=%d",
				m.name, j.ID, j.SubmitTime, m.lastStreamSubmit)
		}
		if j.Nodes > m.pool.Total() {
			return fmt.Errorf("resmgr %s: job %d requests %d nodes but the pool has %d — it could never start",
				m.name, j.ID, j.Nodes, m.pool.Total())
		}
		if err := m.Expect(j); err != nil {
			return err
		}
		m.streamStarted = true
		m.lastStreamSubmit = j.SubmitTime
		m.replay = append(m.replay, j)
	}
	if m.replayIdx > 0 && m.replayIdx*2 >= len(m.replay) {
		n := copy(m.replay, m.replay[m.replayIdx:])
		for i := n; i < len(m.replay); i++ {
			m.replay[i] = nil
		}
		m.replay = m.replay[:n]
		m.replayIdx = 0
	}
	return nil
}

// foldTerminalPrefix folds the contiguous registration-order prefix of
// terminal jobs into the streaming collector and evicts them from the
// registry. Folding strictly in registration order replays the exact
// accumulation sequence metrics.Collect would run over the full job list,
// which is what keeps streamed reports byte-identical to materialized
// ones. No-op outside streaming mode, where the registry must stay whole.
func (m *Manager) foldTerminalPrefix() {
	if !m.streaming {
		return
	}
	for m.allHead < len(m.all) {
		j := m.all[m.allHead]
		if j.State != job.Completed && j.State != job.Cancelled {
			break
		}
		m.collector.Add(j)
		m.folded++
		delete(m.jobs, j.ID)
		m.all[m.allHead] = nil
		m.allHead++
	}
	if m.allHead > 0 && m.allHead*2 >= len(m.all) {
		n := copy(m.all, m.all[m.allHead:])
		for i := n; i < len(m.all); i++ {
			m.all[i] = nil
		}
		m.all = m.all[:n]
		m.allHead = 0
	}
}

// CollectReport renders the domain's metrics report: in streaming mode the
// already-folded prefix plus the still-live suffix (in registration
// order); otherwise a plain metrics.Collect over the registry. Both paths
// run the identical accumulation sequence, so a streamed run reports the
// same bytes as a materialized one.
func (m *Manager) CollectReport(totalNodes int, span sim.Duration) metrics.DomainReport {
	if !m.streaming {
		return metrics.Collect(m.name, m.JobsOrdered(), totalNodes, span)
	}
	c := *m.collector // value copy: Report must not consume the fold state
	for _, j := range m.all[m.allHead:] {
		c.Add(j)
	}
	return c.Report(totalNodes, span)
}

// TraceDone reports whether every trace job has been submitted (and, in
// streaming mode, the source is drained). Managers without a trace are
// trivially done.
func (m *Manager) TraceDone() bool {
	if m.streaming {
		return m.srcDone && m.replayIdx >= len(m.replay) && m.streamErr == nil
	}
	return m.replayIdx >= len(m.replay)
}

// RegisteredCount returns how many jobs have ever been registered,
// including jobs already folded out of the streaming registry.
func (m *Manager) RegisteredCount() int {
	return m.folded + len(m.all) - m.allHead
}

// Streaming reports whether this manager replays from a stream.
func (m *Manager) Streaming() bool { return m.streaming }

// StreamErr returns the error that stopped a streaming replay, if any.
func (m *Manager) StreamErr() error { return m.streamErr }

package resmgr

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/sim"
)

// sliceSource adapts a job slice to JobSource for differential tests.
type sliceSource struct {
	jobs []*job.Job
	idx  int
}

func (s *sliceSource) NextJob() (*job.Job, error) {
	if s.idx >= len(s.jobs) {
		return nil, io.EOF
	}
	j := s.jobs[s.idx]
	s.idx++
	return j, nil
}

// genPairedTrace builds deterministic paired traces for domains A and B:
// enough contention on small pools to exercise queueing, holds, yields,
// and backfill, with mates at a bounded submit-index skew.
func genPairedTrace(n int) (ta, tb []*job.Job) {
	for i := 1; i <= n; i++ {
		ja := job.New(job.ID(i), 1+(i*13)%40, sim.Time(i*40), sim.Duration(300+(i*97)%1200), sim.Duration(600+(i*97)%1200))
		ja.User = i % 5
		ta = append(ta, ja)
		jb := job.New(job.ID(i), 1+(i*7)%8, sim.Time(i*40+(i%3)*15), sim.Duration(200+(i*53)%900), sim.Duration(500+(i*53)%900))
		jb.User = i % 4
		tb = append(tb, jb)
		if i%3 == 0 {
			pairJobs(ja, jb)
		}
	}
	return ta, tb
}

// runPaired executes one coupled two-manager run over fresh traces and
// renders both domain reports plus run-shape counters; stream selects
// SubmitTraceStream at the given window vs materialized SubmitTrace.
func runPaired(t *testing.T, n int, stream bool, window int) string {
	t.Helper()
	eng, a, b := pairDomains(t, 64, 16, cosched.DefaultConfig(cosched.Hold), cosched.DefaultConfig(cosched.Yield))
	ta, tb := genPairedTrace(n)
	if stream {
		if err := a.SubmitTraceStream(&sliceSource{jobs: ta}, window); err != nil {
			t.Fatal(err)
		}
		if err := b.SubmitTraceStream(&sliceSource{jobs: tb}, window); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := a.SubmitTrace(ta); err != nil {
			t.Fatal(err)
		}
		if err := b.SubmitTrace(tb); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if err := a.StreamErr(); err != nil {
		t.Fatalf("A stream error: %v", err)
	}
	if err := b.StreamErr(); err != nil {
		t.Fatalf("B stream error: %v", err)
	}
	span := eng.Now()
	ra := a.CollectReport(a.Pool().Total(), span)
	rb := b.CollectReport(b.Pool().Total(), span)
	return fmt.Sprintf("%+v\n%+v\nmakespan=%d itersA=%d itersB=%d doneA=%d doneB=%d",
		ra, rb, span, a.Iterations(), b.Iterations(), a.CompletedCount(), b.CompletedCount())
}

// TestSubmitTraceStreamMatchesSubmitTrace is the streaming replay
// acceptance test: with a window covering the pair skew, a streamed
// coupled run must be byte-identical to the materialized run — reports,
// makespan, iteration counts — at several window sizes.
func TestSubmitTraceStreamMatchesSubmitTrace(t *testing.T) {
	const n = 120
	want := runPaired(t, n, false, 0)
	for _, window := range []int{8, 64, n + 10} {
		got := runPaired(t, n, true, window)
		if got != want {
			t.Fatalf("window=%d: streamed run differs:\n got: %s\nwant: %s", window, got, want)
		}
	}
}

// TestStreamFoldsTerminalJobs checks the bounded-registry claim: after a
// streamed run drains, every job has been folded out of the registry and
// only the collector retains its contribution.
func TestStreamFoldsTerminalJobs(t *testing.T) {
	eng, a, _ := pairDomains(t, 64, 16, cosched.Config{}, cosched.Config{})
	ta, _ := genPairedTrace(80)
	for _, j := range ta {
		j.Mates = nil // unpaired: domain B idle
	}
	if err := a.SubmitTraceStream(&sliceSource{jobs: ta}, 16); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !a.TraceDone() {
		t.Fatal("trace not done after drain")
	}
	if a.CompletedCount() != 80 {
		t.Fatalf("completed %d/80", a.CompletedCount())
	}
	if a.RegisteredCount() != 80 {
		t.Fatalf("RegisteredCount = %d, want 80", a.RegisteredCount())
	}
	if live := len(a.JobsOrdered()); live != 0 {
		t.Fatalf("%d jobs still in registry after fold", live)
	}
	rep := a.CollectReport(64, eng.Now())
	if rep.Completed != 80 || rep.TotalJobs != 80 {
		t.Fatalf("folded report lost jobs: %+v", rep)
	}
}

// TestStreamWindowBoundsRegistry: mid-run, the registry never holds more
// than window + live jobs (the O(window) memory contract).
func TestStreamWindowBoundsRegistry(t *testing.T) {
	eng, a, _ := pairDomains(t, 8, 8, cosched.Config{}, cosched.Config{})
	var tr []*job.Job
	for i := 1; i <= 200; i++ {
		// One node each, serialized by the tiny pool: long queues form.
		tr = append(tr, job.New(job.ID(i), 8, sim.Time(i), 50, 50))
	}
	const window = 10
	if err := a.SubmitTraceStream(&sliceSource{jobs: tr}, window); err != nil {
		t.Fatal(err)
	}
	maxLive := 0
	for eng.Step() {
		if n := len(a.JobsOrdered()); n > maxLive {
			maxLive = n
		}
	}
	if a.CompletedCount() != 200 {
		t.Fatalf("completed %d/200", a.CompletedCount())
	}
	// Live = look-ahead window + queued/running population. The pool fits
	// one job at a time and arrivals outpace service, so the queue is the
	// dominant term; the registry must still never see the whole trace.
	if maxLive >= 200 {
		t.Fatalf("registry grew to %d — whole trace materialized", maxLive)
	}
}

func TestSubmitTraceStreamErrors(t *testing.T) {
	eng, a, b := pairDomains(t, 64, 16, cosched.Config{}, cosched.Config{})
	_ = eng
	if err := a.SubmitTraceStream(nil, 4); err == nil {
		t.Fatal("nil source accepted")
	}
	if err := a.SubmitTraceStream(&sliceSource{}, 4); err != nil {
		t.Fatal(err)
	}
	if err := a.SubmitTraceStream(&sliceSource{}, 4); err == nil {
		t.Fatal("second SubmitTraceStream accepted")
	}
	if err := a.SubmitTrace(nil); err == nil {
		t.Fatal("SubmitTrace after SubmitTraceStream accepted")
	}
	// Oversized job rejected at the window, not mid-simulation.
	big := &sliceSource{jobs: []*job.Job{job.New(1, 999, 0, 60, 60)}}
	err := b.SubmitTraceStream(big, 4)
	if err == nil || !strings.Contains(err.Error(), "could never start") {
		t.Fatalf("err = %v, want oversized-job rejection", err)
	}
}

// TestStreamMidRunOrderViolationStops: an ordering violation surfacing
// after the run started must stop arrivals and be reported, not panic.
func TestStreamMidRunOrderViolationStops(t *testing.T) {
	eng, a, _ := pairDomains(t, 64, 16, cosched.Config{}, cosched.Config{})
	jobs := []*job.Job{
		job.New(1, 4, 0, 60, 60),
		job.New(2, 4, 100, 60, 60),
		job.New(3, 4, 50, 60, 60), // out of order, beyond the initial window
	}
	if err := a.SubmitTraceStream(&sliceSource{jobs: jobs}, 2); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if a.StreamErr() == nil {
		t.Fatal("ordering violation not surfaced")
	}
	if a.TraceDone() {
		t.Fatal("TraceDone true despite stream error")
	}
	if errors.Is(a.StreamErr(), io.EOF) {
		t.Fatal("EOF leaked as stream error")
	}
}

// Package schedbench builds the standard scheduler-core benchmark scenario
// shared by the resmgr BenchmarkIterate suite and the cmd/experiments
// -schedbench / -schedsmoke modes, so the committed BENCH_sched.json numbers
// and the in-repo benchmarks measure exactly the same workload.
//
// The scenario is a blocked steady state on an Intrepid-sized pool: filler
// jobs occupy most of the machine, and every queued job needs more nodes
// than remain free, so each scheduling iteration plans nothing. That is the
// hot path of a loaded simulation — Iterate runs on every queue/pool change
// and usually starts nothing — and the path the incremental core's
// skip-cache, sorted queue, and maintained timeline optimize.
package schedbench

import (
	"fmt"

	"cosched/internal/cluster"
	"cosched/internal/job"
	"cosched/internal/policy"
	"cosched/internal/predict"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// Scenario dimensions. Fillers leave FreeNodes free; blocked jobs each ask
// for BlockedNodes > FreeNodes, so no plan can start or backfill them.
const (
	PoolNodes    = 40960 // Intrepid
	fillerCount  = 64
	fillerNodes  = 512 // 64 × 512 = 32768 busy
	FreeNodes    = PoolNodes - fillerCount*fillerNodes
	BlockedNodes = 2 * FreeNodes
)

// QueueSizes are the queue depths the BenchmarkIterate suite sweeps.
var QueueSizes = []int{1000, 4000, 16000}

// Steady returns an engine and manager settled at the blocked steady state:
// fillerCount running jobs and `queued` blocked jobs, FCFS + EASY backfill +
// walltime estimates. The returned blocked slice holds the queued jobs in
// submission order (for churn drivers); nextID is the first unused job ID.
func Steady(core resmgr.Core, queued int) (eng *sim.Engine, m *resmgr.Manager, blocked []*job.Job, nextID job.ID) {
	eng = sim.NewEngine()
	pool := cluster.New("bench", PoolNodes)
	m = resmgr.New(eng, resmgr.Options{
		Name:        "bench",
		Pool:        pool,
		Policy:      policy.FCFS{},
		Backfilling: true,
		Estimator:   predict.Walltime{},
		Core:        core,
	})

	id := job.ID(1)
	for i := 0; i < fillerCount; i++ {
		f := job.New(id, fillerNodes, 0, 30*sim.Day, 30*sim.Day)
		id++
		if err := m.Submit(f); err != nil {
			panic(fmt.Sprintf("schedbench: submit filler: %v", err))
		}
	}
	eng.RunUntil(0) // the coalesced iteration starts every filler
	if pool.Free() != FreeNodes {
		panic(fmt.Sprintf("schedbench: fillers did not settle: free=%d want %d", pool.Free(), FreeNodes))
	}

	blocked = make([]*job.Job, 0, queued)
	for i := 0; i < queued; i++ {
		j := job.New(id, BlockedNodes, 0, sim.Hour, sim.Hour)
		id++
		if err := m.Submit(j); err != nil {
			panic(fmt.Sprintf("schedbench: submit blocked: %v", err))
		}
		blocked = append(blocked, j)
	}
	eng.RunUntil(0) // one iteration over the full queue; plans nothing
	if m.QueueLength() != queued || pool.Free() != FreeNodes {
		panic(fmt.Sprintf("schedbench: blocked queue did not settle: queue=%d free=%d", m.QueueLength(), pool.Free()))
	}
	return eng, m, blocked, id
}

// Churn cancels victim (a queued blocked job) and submits a replacement,
// returning the replacement and next ID. Driving Iterate between Churn calls
// exercises queue removal/insertion and cache invalidation rather than the
// pure skip path; callers typically rotate victims through the blocked set.
func Churn(m *resmgr.Manager, victim *job.Job, nextID job.ID) (*job.Job, job.ID) {
	if err := m.Cancel(victim.ID); err != nil {
		panic(fmt.Sprintf("schedbench: churn cancel: %v", err))
	}
	j := job.New(nextID, BlockedNodes, 0, sim.Hour, sim.Hour)
	nextID++
	if err := m.Submit(j); err != nil {
		panic(fmt.Sprintf("schedbench: churn submit: %v", err))
	}
	return j, nextID
}

// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives every simulated component in this repository: resource
// managers, coupled-system simulations, and the experiment harness. Events
// are ordered by (time, priority, sequence); the sequence number guarantees
// a total, reproducible order even when many events share a timestamp, which
// is essential for comparing scheduling policies run-for-run.
//
// Time is modelled as int64 seconds of virtual time. Nothing in the kernel
// depends on the wall clock.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Time is a point in virtual time, in seconds since the simulation epoch.
type Time = int64

// Duration is a span of virtual time in seconds.
type Duration = int64

// Common durations, for readability at call sites.
const (
	Second Duration = 1
	Minute Duration = 60
	Hour   Duration = 3600
	Day    Duration = 24 * Hour
)

// Priority orders events that fire at the same instant. Lower values fire
// first. The bands below keep job-lifecycle transitions coherent: at a given
// instant, completions free nodes before submissions arrive, and the
// scheduler iterates only after the state changes that triggered it.
type Priority int

// Priority bands used by the resource-manager layer.
const (
	PriorityEnd      Priority = 0   // job completion: release nodes first
	PriorityRelease  Priority = 10  // periodic hold-release (deadlock breaker)
	PrioritySubmit   Priority = 20  // job arrival
	PrioritySchedule Priority = 30  // scheduling iteration
	PriorityMetrics  Priority = 40  // sampling probes
	PriorityDefault  Priority = 100 // anything else
)

// Handler is the callback invoked when an event fires. It runs with the
// engine clock set to the event's time.
type Handler func(now Time)

// event is a scheduled callback.
type event struct {
	time     Time
	priority Priority
	seq      uint64
	handler  Handler
	canceled bool
	index    int // heap index, -1 when popped
}

// EventRef identifies a scheduled event so it can be canceled.
type EventRef struct{ ev *event }

// Cancel marks the referenced event so it will not fire. Canceling an
// already-fired or already-canceled event is a no-op. Cancel on the zero
// EventRef is also a no-op.
func (r EventRef) Cancel() {
	if r.ev != nil {
		r.ev.canceled = true
	}
}

// Pending reports whether the referenced event is still scheduled to fire.
func (r EventRef) Pending() bool {
	return r.ev != nil && !r.ev.canceled && r.ev.index >= 0
}

// eventHeap implements heap.Interface with (time, priority, seq) ordering.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.time != b.time {
		return a.time < b.time
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all handlers run on the caller's goroutine inside Run.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	fired   uint64
	running bool
}

// NewEngine returns an engine with the clock at time 0. The event heap is
// preallocated: even small simulations queue hundreds of events, and the
// doubling reallocations otherwise show up in every experiment cell.
func NewEngine() *Engine {
	return &Engine{queue: make(eventHeap, 0, 1024)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events scheduled and not yet fired or
// canceled. Canceled events still in the heap are excluded.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// ErrPastEvent is returned by At when scheduling before the current time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// At schedules h to run at absolute time t with the given priority.
// Scheduling at the current instant is allowed (the event fires during the
// current Run). Scheduling in the past returns ErrPastEvent.
func (e *Engine) At(t Time, p Priority, h Handler) (EventRef, error) {
	if t < e.now {
		return EventRef{}, fmt.Errorf("%w: now=%d, requested=%d", ErrPastEvent, e.now, t)
	}
	ev := &event{time: t, priority: p, seq: e.seq, handler: h}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventRef{ev}, nil
}

// After schedules h to run d seconds from now. Negative d is clamped to 0.
func (e *Engine) After(d Duration, p Priority, h Handler) EventRef {
	if d < 0 {
		d = 0
	}
	ref, _ := e.At(e.now+d, p, h) // cannot be in the past
	return ref
}

// Every schedules h to run every interval seconds, first firing after one
// interval. The returned ref cancels the whole series. interval must be > 0.
func (e *Engine) Every(interval Duration, p Priority, h Handler) EventRef {
	if interval <= 0 {
		panic("sim: Every interval must be positive")
	}
	series := &event{canceled: false, index: -1}
	var schedule func()
	schedule = func() {
		ref := e.After(interval, p, func(now Time) {
			if series.canceled {
				return
			}
			h(now)
			if !series.canceled {
				schedule()
			}
		})
		// Keep series.index sane for Pending: mirror the live event.
		series.index = ref.ev.index
	}
	schedule()
	return EventRef{series}
}

// Step fires the single next pending event, advancing the clock to its time.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.time
		e.fired++
		ev.handler(e.now)
		return true
	}
	return false
}

// Run fires events until the queue drains. It returns the final clock value.
func (e *Engine) Run() Time {
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with time ≤ deadline, then sets the clock to the
// deadline (if it is later than the last event fired) and returns it. Events
// after the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) Time {
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.time > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// RunFor is RunUntil(Now()+d).
func (e *Engine) RunFor(d Duration) Time { return e.RunUntil(e.now + d) }

// NextTime returns the time of the next pending event, if any. It is used
// by the real-time driver to decide how long to sleep.
func (e *Engine) NextTime() (Time, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.time, true
}

// peek returns the next non-canceled event without popping, draining any
// canceled events it encounters on the way.
func (e *Engine) peek() *event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives every simulated component in this repository: resource
// managers, coupled-system simulations, and the experiment harness. Events
// are ordered by (time, priority, sequence); the sequence number guarantees
// a total, reproducible order even when many events share a timestamp, which
// is essential for comparing scheduling policies run-for-run.
//
// Time is modelled as int64 seconds of virtual time. Nothing in the kernel
// depends on the wall clock.
package sim

import (
	"errors"
	"fmt"
)

// Time is a point in virtual time, in seconds since the simulation epoch.
type Time = int64

// Duration is a span of virtual time in seconds.
type Duration = int64

// Common durations, for readability at call sites.
const (
	Second Duration = 1
	Minute Duration = 60
	Hour   Duration = 3600
	Day    Duration = 24 * Hour
)

// Priority orders events that fire at the same instant. Lower values fire
// first. The bands below keep job-lifecycle transitions coherent: at a given
// instant, completions free nodes before submissions arrive, and the
// scheduler iterates only after the state changes that triggered it.
type Priority int

// Priority bands used by the resource-manager layer.
const (
	PriorityEnd      Priority = 0   // job completion: release nodes first
	PriorityRelease  Priority = 10  // periodic hold-release (deadlock breaker)
	PrioritySubmit   Priority = 20  // job arrival
	PrioritySchedule Priority = 30  // scheduling iteration
	PriorityMetrics  Priority = 40  // sampling probes
	PriorityDefault  Priority = 100 // anything else
)

// Handler is the callback invoked when an event fires. It runs with the
// engine clock set to the event's time.
type Handler func(now Time)

// ArgHandler is a Handler with an explicit payload. Scheduling the same
// ArgHandler value with per-event payloads (AtArg/AfterArg) lets hot
// callers reuse one prebuilt function instead of allocating a fresh
// closure per event — the last allocation on the event-scheduling path.
type ArgHandler func(now Time, arg any)

// event is a scheduled callback. Fired and canceled events are recycled
// through the engine's free list, so an event value is reused for many
// logical events over a simulation; gen disambiguates incarnations for
// outstanding EventRefs.
type event struct {
	time     Time
	priority Priority
	seq      uint64
	handler  Handler
	argH     ArgHandler // used instead of handler when non-nil
	arg      any
	gen      uint64
	canceled bool
	index    int // heap index, -1 when popped
}

// EventRef identifies a scheduled event so it can be canceled. It is
// generation-stamped: once the event fires (or its cancellation is
// collected) the ref goes stale and Cancel/Pending become no-ops, even
// though the underlying struct is recycled for later events.
type EventRef struct {
	ev  *event
	gen uint64
}

// Cancel marks the referenced event so it will not fire. Canceling an
// already-fired or already-canceled event is a no-op. Cancel on the zero
// EventRef is also a no-op.
func (r EventRef) Cancel() {
	if r.ev != nil && r.ev.gen == r.gen {
		r.ev.canceled = true
	}
}

// Pending reports whether the referenced event is still scheduled to fire.
func (r EventRef) Pending() bool {
	return r.ev != nil && r.ev.gen == r.gen && !r.ev.canceled && r.ev.index >= 0
}

// eventHeap is a binary min-heap of events ordered by (time, priority,
// seq). It is hand-rolled rather than container/heap: the interface
// dispatch and per-comparison function calls of the generic heap were the
// single largest CPU sink of a simulation sweep (~20% in Step alone), and
// the specialized sift loops below inline completely.
type eventHeap []*event

// eventLess is the total event order: earlier time, then lower priority
// value, then schedule order.
func eventLess(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

// push inserts ev, maintaining the heap order and the events' index
// fields (Pending checks index to see whether an event is still queued).
//
//simlint:hotpath
func (h *eventHeap) push(ev *event) {
	q := append(*h, ev) //simlint:allow R6 amortized heap growth, bounded by peak concurrent events (trace replay is chained, not pre-scheduled)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(ev, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = i
		i = parent
	}
	q[i] = ev
	ev.index = i
	*h = q
}

// pop removes and returns the minimum event, or nil on an empty heap.
//
//simlint:hotpath
func (h *eventHeap) pop() *event {
	q := *h
	n := len(q)
	if n == 0 {
		return nil
	}
	root := q[0]
	root.index = -1
	n--
	last := q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	if n == 0 {
		return root
	}
	// Sift the former tail down from the root.
	i := 0
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && eventLess(q[r], q[kid]) {
			kid = r
		}
		if !eventLess(q[kid], last) {
			break
		}
		q[i] = q[kid]
		q[i].index = i
		i = kid
	}
	q[i] = last
	last.index = i
	return root
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all handlers run on the caller's goroutine inside Run.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	free    []*event // recycled event structs; see recycle
	fired   uint64
	running bool
}

// NewEngine returns an engine with the clock at time 0. The event heap is
// preallocated: even small simulations queue hundreds of events, and the
// doubling reallocations otherwise show up in every experiment cell.
func NewEngine() *Engine {
	return &Engine{queue: make(eventHeap, 0, 1024), free: make([]*event, 0, 1024)}
}

// newEvent returns a zeroed event, recycled from the free list when one is
// available. Steady-state simulation (schedule/fire churn) therefore runs
// with zero event allocations once the pool has warmed to the simulation's
// peak concurrent event count.
//
//simlint:hotpath
func (e *Engine) newEvent() *event {
	n := len(e.free)
	if n == 0 {
		return &event{}
	}
	ev := e.free[n-1]
	e.free[n-1] = nil
	e.free = e.free[:n-1]
	return ev
}

// recycle returns a fired or collected-canceled event to the free list.
// The generation bump invalidates every outstanding EventRef to this
// incarnation, and the handler/arg fields are cleared so recycled events
// do not pin closures or payloads for the garbage collector.
//
//simlint:hotpath
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.handler = nil
	ev.argH = nil
	ev.arg = nil
	ev.canceled = false
	ev.index = -1
	// Every pooled event came out of the heap, so the pool (and the total
	// number of event structs in existence) is bounded by the peak
	// concurrent event count, not by the number of events ever fired.
	e.free = append(e.free, ev) //simlint:allow R6 amortized free-list growth, bounded by peak concurrent events
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events scheduled and not yet fired or
// canceled. Canceled events still in the heap are excluded.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// ErrPastEvent is returned by At when scheduling before the current time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// At schedules h to run at absolute time t with the given priority.
// Scheduling at the current instant is allowed (the event fires during the
// current Run). Scheduling in the past returns ErrPastEvent.
//
//simlint:hotpath
func (e *Engine) At(t Time, p Priority, h Handler) (EventRef, error) {
	if t < e.now {
		return EventRef{}, fmt.Errorf("%w: now=%d, requested=%d", ErrPastEvent, e.now, t)
	}
	ev := e.newEvent()
	ev.time, ev.priority, ev.seq, ev.handler = t, p, e.seq, h
	e.seq++
	e.queue.push(ev)
	return EventRef{ev, ev.gen}, nil
}

// After schedules h to run d seconds from now. Negative d is clamped to 0.
func (e *Engine) After(d Duration, p Priority, h Handler) EventRef {
	if d < 0 {
		d = 0
	}
	ref, _ := e.At(e.now+d, p, h) // cannot be in the past
	return ref
}

// AtArg is At for an ArgHandler plus payload: h(now, arg) fires at t.
// Callers that would otherwise build a per-event closure over one varying
// value pass that value as arg and reuse a single prebuilt h, making the
// schedule path allocation-free.
//
//simlint:hotpath
func (e *Engine) AtArg(t Time, p Priority, h ArgHandler, arg any) (EventRef, error) {
	if t < e.now {
		return EventRef{}, fmt.Errorf("%w: now=%d, requested=%d", ErrPastEvent, e.now, t)
	}
	ev := e.newEvent()
	ev.time, ev.priority, ev.seq, ev.argH, ev.arg = t, p, e.seq, h, arg
	e.seq++
	e.queue.push(ev)
	return EventRef{ev, ev.gen}, nil
}

// AfterArg schedules h(now, arg) to run d seconds from now. Negative d is
// clamped to 0.
func (e *Engine) AfterArg(d Duration, p Priority, h ArgHandler, arg any) EventRef {
	if d < 0 {
		d = 0
	}
	ref, _ := e.AtArg(e.now+d, p, h, arg) // cannot be in the past
	return ref
}

// Every schedules h to run every interval seconds, first firing after one
// interval. The returned ref cancels the whole series. interval must be > 0.
func (e *Engine) Every(interval Duration, p Priority, h Handler) EventRef {
	if interval <= 0 {
		panic("sim: Every interval must be positive")
	}
	series := &event{canceled: false, index: -1}
	var schedule func()
	schedule = func() {
		ref := e.After(interval, p, func(now Time) {
			if series.canceled {
				return
			}
			h(now)
			if !series.canceled {
				schedule()
			}
		})
		// Keep series.index sane for Pending: mirror the live event.
		series.index = ref.ev.index
	}
	schedule()
	// The series sentinel never enters the heap, so it is never recycled
	// and its generation stays 0 for the lifetime of the ref.
	return EventRef{series, 0}
}

// Step fires the single next pending event, advancing the clock to its time.
// It returns false when no events remain.
//
//simlint:hotpath
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.queue.pop()
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		e.now = ev.time
		e.fired++
		if ev.argH != nil {
			h, arg := ev.argH, ev.arg
			e.recycle(ev)
			h(e.now, arg)
		} else {
			h := ev.handler
			e.recycle(ev)
			h(e.now)
		}
		return true
	}
	return false
}

// Run fires events until the queue drains. It returns the final clock value.
func (e *Engine) Run() Time {
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with time ≤ deadline, then sets the clock to the
// deadline (if it is later than the last event fired) and returns it. Events
// after the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) Time {
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.time > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// RunFor is RunUntil(Now()+d).
func (e *Engine) RunFor(d Duration) Time { return e.RunUntil(e.now + d) }

// NextTime returns the time of the next pending event, if any. It is used
// by the real-time driver to decide how long to sleep.
func (e *Engine) NextTime() (Time, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.time, true
}

// peek returns the next non-canceled event without popping, draining any
// canceled events it encounters on the way.
func (e *Engine) peek() *event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.canceled {
			return ev
		}
		e.queue.pop()
		e.recycle(ev)
	}
	return nil
}

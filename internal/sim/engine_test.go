package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, tm := range []Time{30, 10, 20, 10, 5} {
		if _, err := e.At(tm, PriorityDefault, func(now Time) { got = append(got, now) }); err != nil {
			t.Fatal(err)
		}
	}
	end := e.Run()
	want := []Time{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %d, want %d", i, got[i], want[i])
		}
	}
	if end != 30 {
		t.Errorf("Run returned %d, want 30", end)
	}
}

func TestEnginePriorityOrderWithinInstant(t *testing.T) {
	e := NewEngine()
	var order []string
	e.After(10, PrioritySchedule, func(Time) { order = append(order, "sched") })
	e.After(10, PriorityEnd, func(Time) { order = append(order, "end") })
	e.After(10, PrioritySubmit, func(Time) { order = append(order, "submit") })
	e.After(10, PriorityRelease, func(Time) { order = append(order, "release") })
	e.Run()
	want := []string{"end", "release", "submit", "sched"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineFIFOWithinSamePriority(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.After(5, PriorityDefault, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("event %d fired out of order: got %d", i, v)
		}
	}
}

func TestEngineRejectsPastEvents(t *testing.T) {
	e := NewEngine()
	e.After(10, PriorityDefault, func(Time) {})
	e.Run()
	if _, err := e.At(5, PriorityDefault, func(Time) {}); err == nil {
		t.Fatal("scheduling in the past succeeded, want error")
	}
}

func TestEngineSameInstantSchedulingDuringHandler(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.After(10, PrioritySubmit, func(now Time) {
		// An event scheduled for "now" from inside a handler must fire.
		e.After(0, PrioritySchedule, func(n2 Time) {
			if n2 != now {
				t.Errorf("chained event at %d, want %d", n2, now)
			}
			fired++
		})
	})
	e.Run()
	if fired != 1 {
		t.Fatalf("chained event fired %d times, want 1", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ref := e.After(10, PriorityDefault, func(Time) { fired = true })
	if !ref.Pending() {
		t.Fatal("event not pending after scheduling")
	}
	ref.Cancel()
	if ref.Pending() {
		t.Fatal("event still pending after cancel")
	}
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	// Double-cancel and zero-ref cancel are no-ops.
	ref.Cancel()
	EventRef{}.Cancel()
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine()
	var times []Time
	ref := e.Every(10, PriorityDefault, func(now Time) {
		times = append(times, now)
		if now >= 50 {
			// Stop the series from inside its own handler.
		}
	})
	e.After(55, PriorityDefault, func(Time) { ref.Cancel() })
	e.RunUntil(100)
	want := []Time{10, 20, 30, 40, 50}
	if len(times) != len(want) {
		t.Fatalf("periodic fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("periodic fired at %v, want %v", times, want)
		}
	}
}

func TestEngineRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.After(10, PriorityDefault, func(Time) {})
	e.After(100, PriorityDefault, func(Time) {})
	end := e.RunUntil(50)
	if end != 50 {
		t.Fatalf("RunUntil returned %d, want 50", end)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (the t=100 event)", e.Pending())
	}
	e.Run()
	if e.Now() != 100 {
		t.Fatalf("final clock %d, want 100", e.Now())
	}
}

func TestEngineStepReturnsFalseWhenDrained(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
	e.After(1, PriorityDefault, func(Time) {})
	if !e.Step() {
		t.Fatal("Step with pending event returned false")
	}
	if e.Step() {
		t.Fatal("Step after drain returned true")
	}
}

// Property: for any set of (time, priority) pairs, firing order is sorted
// by (time, priority, insertion order).
func TestEngineOrderingProperty(t *testing.T) {
	type spec struct {
		T uint16
		P uint8
	}
	f := func(specs []spec) bool {
		e := NewEngine()
		type key struct {
			t   Time
			p   Priority
			tie int
		}
		var fired []key
		for i, s := range specs {
			i := i
			tm, pr := Time(s.T), Priority(s.P)
			if _, err := e.At(tm, pr, func(now Time) {
				fired = append(fired, key{now, pr, i})
			}); err != nil {
				return false
			}
		}
		e.Run()
		if len(fired) != len(specs) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			a, b := fired[i-1], fired[i]
			if a.t > b.t {
				return false
			}
			if a.t == b.t && a.p > b.p {
				return false
			}
			if a.t == b.t && a.p == b.p && a.tie > b.tie {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.After(Duration(i), PriorityDefault, func(Time) {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestEveryCancelFromOwnHandler(t *testing.T) {
	e := NewEngine()
	var ref EventRef
	count := 0
	ref = e.Every(10, PriorityDefault, func(Time) {
		count++
		if count == 3 {
			ref.Cancel()
		}
	})
	e.RunUntil(1000)
	if count != 3 {
		t.Fatalf("fired %d times, want 3 (self-canceled)", count)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after self-cancel", e.Pending())
	}
}

func TestEveryPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) accepted")
		}
	}()
	NewEngine().Every(0, PriorityDefault, func(Time) {})
}

func TestNextTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextTime(); ok {
		t.Fatal("empty engine has a next time")
	}
	ref := e.After(50, PriorityDefault, func(Time) {})
	e.After(90, PriorityDefault, func(Time) {})
	if next, ok := e.NextTime(); !ok || next != 50 {
		t.Fatalf("next = %d, %v", next, ok)
	}
	// Canceling the head exposes the next event.
	ref.Cancel()
	if next, ok := e.NextTime(); !ok || next != 90 {
		t.Fatalf("next after cancel = %d, %v", next, ok)
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	e := NewEngine()
	e.After(10, PriorityDefault, func(Time) {})
	e.RunFor(25)
	if e.Now() != 25 {
		t.Fatalf("now = %d, want 25", e.Now())
	}
	e.RunFor(25)
	if e.Now() != 50 {
		t.Fatalf("now = %d, want 50", e.Now())
	}
}

func TestAfterClampsNegative(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-100, PriorityDefault, func(Time) { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Fatalf("negative After: fired=%v now=%d", fired, e.Now())
	}
}

func TestEventRecycleInvalidatesStaleRefs(t *testing.T) {
	e := NewEngine()
	var aFired, bFired bool
	refA := e.After(1, PriorityDefault, func(Time) { aFired = true })
	e.Run()
	if !aFired {
		t.Fatal("A did not fire")
	}
	if refA.Pending() {
		t.Fatal("fired event still pending")
	}
	// B reuses A's recycled struct; a stale Cancel on A must not kill B.
	refB := e.After(1, PriorityDefault, func(Time) { bFired = true })
	if refA.ev != refB.ev {
		t.Fatalf("expected struct reuse through the free list (pool len %d)", len(e.free))
	}
	refA.Cancel()
	if !refB.Pending() {
		t.Fatal("stale Cancel killed the recycled event")
	}
	e.Run()
	if !bFired {
		t.Fatal("B did not fire")
	}
}

func TestCanceledEventsAreRecycled(t *testing.T) {
	e := NewEngine()
	ref := e.After(5, PriorityDefault, func(Time) { t.Fatal("canceled event fired") })
	ref.Cancel()
	e.After(1, PriorityDefault, func(Time) {})
	e.Run()
	if got := len(e.free); got != 2 {
		t.Fatalf("free pool has %d events, want 2 (one canceled, one fired)", got)
	}
	if ref.Pending() {
		t.Fatal("collected canceled event still pending")
	}
}

func TestAtArgPassesPayload(t *testing.T) {
	e := NewEngine()
	type payload struct{ n int }
	p1, p2 := &payload{1}, &payload{2}
	var got []int
	h := func(_ Time, arg any) { got = append(got, arg.(*payload).n) }
	e.AfterArg(2, PriorityDefault, h, p2)
	e.AfterArg(1, PriorityDefault, h, p1)
	if _, err := e.AtArg(-1, PriorityDefault, h, p1); err == nil {
		t.Fatal("AtArg accepted a past event")
	}
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

// TestEngineSteadyStateZeroAlloc pins the free-list property: once the
// pool is warm, the schedule→fire→recycle cycle performs no allocations.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	h := func(Time) {}
	// Warm the pool past the loop's concurrent event count.
	for i := 0; i < 64; i++ {
		e.After(Duration(i), PriorityDefault, h)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 32; i++ {
			e.After(Duration(i%8), PriorityDefault, h)
		}
		for e.Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state engine churn allocates %.1f per cycle, want 0", allocs)
	}
}

package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the SWF parser against hostile or corrupt trace files:
// it must either return an error or a well-formed record set — never
// panic, and whatever it accepts must survive a write/re-read round trip.
func FuzzRead(f *testing.F) {
	f.Add("; Version: 2.2\n1 100 -1 600 64 -1 -1 64 900 -1 1 -1 -1 -1 -1 -1 -1 -1\n")
	f.Add("1 0 0 1 1 -1 -1 1 1 -1 1 1 -1 -1 -1 -1 -1 -1 other:5,third:9\n")
	f.Add("; key: value\n\n;\n")
	f.Add("1 2 3\n")
	f.Add("999999999999999999999999 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		hdr, recs, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted input must round-trip.
		var buf bytes.Buffer
		if werr := Write(&buf, hdr, recs); werr != nil {
			t.Fatalf("accepted records failed to write: %v", werr)
		}
		_, recs2, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("round trip failed to parse: %v", rerr)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip changed record count: %d → %d", len(recs), len(recs2))
		}
		// Conversion to jobs must not panic either.
		jobs, _ := ToJobs(recs)
		for _, j := range jobs {
			if j.Nodes <= 0 || j.Runtime <= 0 {
				t.Fatalf("ToJobs emitted invalid job %+v", j)
			}
		}
	})
}

// FuzzParseMates hardens the mate-reference grammar.
func FuzzParseMates(f *testing.F) {
	f.Add("a:1")
	f.Add("a:1,b:2,c:3")
	f.Add(":::")
	f.Add("domain:-5")
	f.Fuzz(func(t *testing.T, input string) {
		mates, err := ParseMates(input)
		if err != nil {
			return
		}
		for _, m := range mates {
			if m.Domain == "" {
				t.Fatalf("accepted mate with empty domain from %q", input)
			}
		}
	})
}

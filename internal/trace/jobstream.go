package trace

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"cosched/internal/job"
	"cosched/internal/sim"
)

// ErrUnsorted marks a stream whose records are not in submit-time order.
// Streaming cannot reorder without materializing the trace, so callers
// that can afford O(trace) memory may catch this and fall back to
// LoadFile/Read.
var ErrUnsorted = errors.New("trace: stream not sorted by submit time")

// JobStream adapts a Stream of SWF records into a pull source of jobs,
// applying the same skip rules and the same (SubmitTime, ID) ordering as
// ToJobs. The input must be sorted by submit time (SWF traces are); only
// records sharing one submit second are buffered to sort ID ties, so
// memory is O(max simultaneous submissions), not O(trace). An out-of-order
// record is an error — silently reordering would need the whole trace in
// memory.
//
// NextJob's (job, io.EOF) contract matches workload.JobIter and
// resmgr.JobSource, so a JobStream plugs straight into streaming analysis
// and streaming replay.
type JobStream struct {
	s       *Stream
	tie     []*job.Job // same-submit batch, sorted by ID before draining
	tieIdx  int
	ahead   *job.Job // first job of the next batch, already read
	last    sim.Time // largest submit handed out or buffered
	started bool
	skipped int
	err     error
}

// NewJobStream wraps a record stream. The caller owns the underlying
// reader.
func NewJobStream(s *Stream) *JobStream {
	return &JobStream{s: s}
}

// NextJob returns the next job in (SubmitTime, ID) order, io.EOF at end of
// trace, or the first parse/ordering error.
func (js *JobStream) NextJob() (*job.Job, error) {
	if js.err != nil {
		return nil, js.err
	}
	if js.tieIdx >= len(js.tie) {
		if err := js.refill(); err != nil {
			js.err = err
			return nil, err
		}
	}
	j := js.tie[js.tieIdx]
	js.tieIdx++
	return j, nil
}

// refill gathers every record sharing the next submit second, sorts the
// batch by ID (stable, preserving file order for duplicate IDs — exactly
// ToJobs' tie-break), and makes it the current batch.
func (js *JobStream) refill() error {
	js.tie = js.tie[:0]
	js.tieIdx = 0
	if js.ahead != nil {
		js.tie = append(js.tie, js.ahead)
		js.ahead = nil
	}
	for {
		j, err := js.read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if len(js.tie) == 0 || j.SubmitTime == js.tie[0].SubmitTime {
			js.tie = append(js.tie, j)
			continue
		}
		js.ahead = j
		break
	}
	if len(js.tie) == 0 {
		return io.EOF
	}
	sort.SliceStable(js.tie, func(a, b int) bool { return js.tie[a].ID < js.tie[b].ID })
	return nil
}

// read pulls the next valid job from the record stream, counting skips and
// enforcing submit-sortedness.
func (js *JobStream) read() (*job.Job, error) {
	for js.s.Next() {
		j, ok := JobFromRecord(js.s.Record())
		if !ok {
			js.skipped++
			continue
		}
		if js.started && j.SubmitTime < js.last {
			return nil, fmt.Errorf("%w: job %d at t=%d after t=%d (materialize with LoadFile instead)",
				ErrUnsorted, j.ID, j.SubmitTime, js.last)
		}
		js.started = true
		js.last = j.SubmitTime
		return j, nil
	}
	if err := js.s.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// Skipped returns the number of records rejected so far by the ToJobs
// validity rules.
func (js *JobStream) Skipped() int { return js.skipped }

package trace

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

// buildSWF renders lines for (id, submit, runtime, procs) tuples.
func buildSWF(rows [][4]int) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%d %d -1 %d %d -1 -1 %d %d -1 1 7 -1 -1 -1 -1 -1 -1 -1\n",
			r[0], r[1], r[2], r[3], r[3], r[2])
	}
	return b.String()
}

// TestJobStreamMatchesToJobs: the streaming job path must yield exactly the
// jobs ToJobs materializes — same order (SubmitTime, ID), same skips —
// including same-submit ties arriving in descending ID order and invalid
// records interleaved.
func TestJobStreamMatchesToJobs(t *testing.T) {
	rows := [][4]int{
		{5, 0, 60, 4},
		{9, 30, 60, 8},  // tie at t=30, IDs out of order
		{2, 30, 60, 8},  // ...
		{7, 30, 60, 8},  // ...
		{3, 30, -1, 8},  // invalid runtime → skipped
		{4, 30, 60, -1}, // invalid procs (alloc and req) → skipped
		{6, 95, 120, 16},
		{8, 95, 10, 1}, // tie at t=95
	}
	in := buildSWF(rows)

	_, recs, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want, wantSkipped := ToJobs(recs)

	js := NewJobStream(NewStream(strings.NewReader(in)))
	var got []*jobT
	for {
		j, err := js.NextJob()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, &jobT{id: int(j.ID), submit: int(j.SubmitTime)})
	}
	if js.Skipped() != wantSkipped {
		t.Fatalf("skipped = %d, want %d", js.Skipped(), wantSkipped)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d jobs, ToJobs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].id != int(want[i].ID) || got[i].submit != int(want[i].SubmitTime) {
			t.Fatalf("job %d: stream (id=%d t=%d) vs ToJobs (id=%d t=%d)",
				i, got[i].id, got[i].submit, want[i].ID, want[i].SubmitTime)
		}
	}
}

type jobT struct{ id, submit int }

func TestJobStreamRejectsUnsortedInput(t *testing.T) {
	in := buildSWF([][4]int{
		{1, 100, 60, 4},
		{2, 50, 60, 4}, // goes backwards
	})
	js := NewJobStream(NewStream(strings.NewReader(in)))
	// Tie-batch read-ahead may surface the violation on the first or the
	// second pull; either way it must arrive before job 2 is yielded.
	var err error
	yielded := 0
	for err == nil {
		_, err = js.NextJob()
		if err == nil {
			yielded++
		}
	}
	if !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("err = %v, want not-sorted error", err)
	}
	if yielded > 1 {
		t.Fatalf("%d jobs yielded past the ordering violation", yielded)
	}
	// The error is sticky.
	if _, err2 := js.NextJob(); err2 == nil {
		t.Fatal("error not sticky")
	}
}

func TestJobStreamPropagatesParseError(t *testing.T) {
	in := "1 0 -1 600 64 -1 -1 64 900 -1 1 7 -1 -1 -1 -1 -1 -1 -1\ngarbage line\n"
	js := NewJobStream(NewStream(strings.NewReader(in)))
	if _, err := js.NextJob(); err == nil {
		// First NextJob reads ahead past t=0's tie batch and hits the
		// garbage — either the first or second call must surface it.
		if _, err2 := js.NextJob(); err2 == nil {
			t.Fatal("parse error swallowed")
		}
	}
}

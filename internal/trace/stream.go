package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Stream is a pull-based SWF iterator: it parses one record per Next call
// and never materializes the trace, so a year-long (multi-GB) file can
// drive statistics or a live simulation in memory independent of trace
// length. It reuses the same hardened line parser as Read — Read is now a
// collect-all loop over a Stream, so both paths accept and reject exactly
// the same inputs.
//
// Header comments (`; key: value`) may appear anywhere in the file; they
// are folded into Header() as they are encountered, so the header is only
// guaranteed complete once Next has returned false. In practice SWF
// headers precede all records and are complete after the first record.
type Stream struct {
	sc     *bufio.Scanner
	hdr    *Header
	rec    Record
	lineNo int
	err    error
	done   bool
}

// NewStream starts streaming SWF records from r. The caller owns r and any
// underlying file handle.
func NewStream(r io.Reader) *Stream {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Stream{sc: sc, hdr: NewHeader()}
}

// Next advances to the next record, skipping blanks and folding comment
// lines into the header. It returns false at end of input or on error;
// check Err to distinguish.
func (s *Stream) Next() bool {
	if s.done {
		return false
	}
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			if k, v, ok := strings.Cut(strings.TrimSpace(line[1:]), ":"); ok {
				s.hdr.Set(strings.TrimSpace(k), strings.TrimSpace(v))
			}
			continue
		}
		rec, err := parseLine(line)
		if err != nil {
			s.err = fmt.Errorf("trace: line %d: %w", s.lineNo, err)
			s.done = true
			return false
		}
		s.rec = rec
		return true
	}
	s.done = true
	s.err = s.sc.Err()
	return false
}

// Record returns the record produced by the last successful Next.
func (s *Stream) Record() Record { return s.rec }

// Header returns the header comments seen so far (complete once Next has
// returned false).
func (s *Stream) Header() *Header { return s.hdr }

// Err returns the first parse or read error, nil on clean end of input.
func (s *Stream) Err() error { return s.err }

// FileStream couples a Stream to the file it reads; Close releases the
// file handle.
type FileStream struct {
	*Stream
	f *os.File
}

// OpenStream opens path for streaming. Close the returned stream when
// done.
func OpenStream(path string) (*FileStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &FileStream{Stream: NewStream(f), f: f}, nil
}

// Close releases the underlying file.
func (s *FileStream) Close() error { return s.f.Close() }

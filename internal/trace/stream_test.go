package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const streamSample = `; Version: 2.2
; Computer: Intrepid

1 0 -1 600 64 -1 -1 64 900 -1 1 7 -1 -1 -1 -1 -1 -1 eureka:1
; MidStream: comment
2 30 -1 120 8 -1 -1 8 120 -1 1 9 -1 -1 -1 -1 -1 -1 -1
`

// TestStreamMatchesRead: pulling records one at a time must yield exactly
// what Read materializes — same records, same header — since Read is a
// collect loop over Stream.
func TestStreamMatchesRead(t *testing.T) {
	hdr, recs, err := Read(strings.NewReader(streamSample))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(strings.NewReader(streamSample))
	var got []Record
	for s.Next() {
		got = append(got, s.Record())
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("stream yielded %d records, Read %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].JobID != recs[i].JobID || got[i].Submit != recs[i].Submit {
			t.Fatalf("record %d: stream %+v vs read %+v", i, got[i], recs[i])
		}
	}
	if len(s.Header().Order) != len(hdr.Order) {
		t.Fatalf("header keys: stream %v vs read %v", s.Header().Order, hdr.Order)
	}
	if s.Header().Fields["MidStream"] != "comment" {
		t.Fatal("mid-stream comment not folded into header")
	}
}

func TestStreamErrorCarriesLineNumber(t *testing.T) {
	in := "1 0 -1 600 64 -1 -1 64 900 -1 1 7 -1 -1 -1 -1 -1 -1\nnot a record\n"
	s := NewStream(strings.NewReader(in))
	if !s.Next() {
		t.Fatalf("first record rejected: %v", s.Err())
	}
	if s.Next() {
		t.Fatal("malformed line accepted")
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2 attribution", err)
	}
	// Next stays false after an error.
	if s.Next() {
		t.Fatal("Next returned true after error")
	}
}

func TestOpenStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.swf")
	if err := os.WriteFile(path, []byte(streamSample), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenStream(path)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for fs.Next() {
		n++
	}
	if err := fs.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("streamed %d records, want 2", n)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStream(filepath.Join(t.TempDir(), "missing.swf")); err == nil {
		t.Fatal("OpenStream on missing file succeeded")
	}
}

// Package trace reads and writes job traces in the Standard Workload
// Format (SWF) used by the Parallel Workloads Archive, extended with an
// optional 19th field carrying coscheduling mate references
// ("domain:jobid[,domain:jobid...]"). Real Intrepid/Eureka traces, where
// available, can be dropped into the simulator through this package; the
// workload package generates synthetic equivalents in the same model.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"cosched/internal/job"
	"cosched/internal/sim"
)

// swfFields is the standard SWF field count; records may carry one extra
// mate field.
const swfFields = 18

// Record is one SWF line in parsed form. Only the fields the simulator
// consumes are interpreted; the rest round-trip as -1.
type Record struct {
	JobID    job.ID
	Submit   sim.Time     // field 2
	Wait     sim.Duration // field 3 (informational)
	Runtime  sim.Duration // field 4
	Procs    int          // field 5 (allocated)
	ReqProcs int          // field 8 (requested; fallback to Procs)
	ReqTime  sim.Duration // field 9 (requested walltime)
	Status   int          // field 11
	UserID   int          // field 12
	Mates    []job.MateRef
}

// Header carries the trace-level comments (`; key: value`).
type Header struct {
	Fields map[string]string
	Order  []string
}

// NewHeader creates an empty header.
func NewHeader() *Header {
	return &Header{Fields: make(map[string]string)}
}

// Set records a header key (preserving insertion order on write).
func (h *Header) Set(key, value string) {
	if _, ok := h.Fields[key]; !ok {
		h.Order = append(h.Order, key)
	}
	h.Fields[key] = value
}

// Write emits the trace: header comments then one line per record, sorted
// by submit time.
func Write(w io.Writer, hdr *Header, recs []Record) error {
	bw := bufio.NewWriter(w)
	if hdr != nil {
		for _, k := range hdr.Order {
			if _, err := fmt.Fprintf(bw, "; %s: %s\n", k, hdr.Fields[k]); err != nil {
				return err
			}
		}
	}
	sorted := append([]Record(nil), recs...)
	sort.SliceStable(sorted, func(i, k int) bool { return sorted[i].Submit < sorted[k].Submit })
	for _, r := range sorted {
		mate := "-1"
		if len(r.Mates) > 0 {
			parts := make([]string, len(r.Mates))
			for i, m := range r.Mates {
				parts[i] = fmt.Sprintf("%s:%d", m.Domain, m.Job)
			}
			mate = strings.Join(parts, ",")
		}
		reqProcs := r.ReqProcs
		if reqProcs == 0 {
			reqProcs = r.Procs
		}
		_, err := fmt.Fprintf(bw, "%d %d %d %d %d -1 -1 %d %d -1 %d %d -1 -1 -1 -1 -1 -1 %s\n",
			r.JobID, r.Submit, r.Wait, r.Runtime, r.Procs,
			reqProcs, r.ReqTime, r.Status, r.UserID, mate)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace by collecting a whole Stream. Unknown comment lines
// are ignored; `; key: value` comments populate the header. For large
// files prefer NewStream directly and avoid materializing the record
// slice.
func Read(r io.Reader) (*Header, []Record, error) {
	s := NewStream(r)
	var recs []Record
	for s.Next() {
		recs = append(recs, s.Record())
	}
	if err := s.Err(); err != nil {
		return nil, nil, err
	}
	return s.Header(), recs, nil
}

func parseLine(line string) (Record, error) {
	f := strings.Fields(line)
	if len(f) < swfFields {
		return Record{}, fmt.Errorf("want ≥%d fields, got %d", swfFields, len(f))
	}
	geti := func(i int) (int64, error) {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("field %d %q: %w", i+1, f[i], err)
		}
		return v, nil
	}
	var rec Record
	var err error
	var v int64
	if v, err = geti(0); err != nil {
		return rec, err
	}
	rec.JobID = job.ID(v)
	if v, err = geti(1); err != nil {
		return rec, err
	}
	rec.Submit = v
	if v, err = geti(2); err != nil {
		return rec, err
	}
	rec.Wait = v
	if v, err = geti(3); err != nil {
		return rec, err
	}
	rec.Runtime = v
	if v, err = geti(4); err != nil {
		return rec, err
	}
	rec.Procs = int(v)
	if v, err = geti(7); err != nil {
		return rec, err
	}
	rec.ReqProcs = int(v)
	if v, err = geti(8); err != nil {
		return rec, err
	}
	rec.ReqTime = v
	if v, err = geti(10); err != nil {
		return rec, err
	}
	rec.Status = int(v)
	if v, err = geti(11); err != nil {
		return rec, err
	}
	rec.UserID = int(v)
	if len(f) > swfFields && f[swfFields] != "-1" {
		mates, err := ParseMates(f[swfFields])
		if err != nil {
			return rec, err
		}
		rec.Mates = mates
	}
	return rec, nil
}

// ParseMates parses "domain:jobid[,domain:jobid...]".
func ParseMates(s string) ([]job.MateRef, error) {
	var out []job.MateRef
	for _, part := range strings.Split(s, ",") {
		dom, idStr, ok := strings.Cut(part, ":")
		if !ok || dom == "" {
			return nil, fmt.Errorf("trace: bad mate ref %q", part)
		}
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad mate job id %q: %w", idStr, err)
		}
		out = append(out, job.MateRef{Domain: dom, Job: job.ID(id)})
	}
	return out, nil
}

// JobFromRecord converts one record to a simulator job, applying the same
// validity rules as ToJobs: records with non-positive runtime or procs (SWF
// uses -1 for unknown) or a negative submit are rejected with ok=false.
// ToJobs and the streaming ingestion path both build on it, so a record is
// accepted by one iff it is accepted by the other.
func JobFromRecord(r Record) (j *job.Job, ok bool) {
	nodes := r.Procs
	if nodes <= 0 {
		nodes = r.ReqProcs
	}
	if nodes <= 0 || r.Runtime <= 0 || r.Submit < 0 {
		return nil, false
	}
	wall := r.ReqTime
	if wall < r.Runtime {
		wall = r.Runtime
	}
	j = job.New(r.JobID, nodes, r.Submit, r.Runtime, wall)
	if r.UserID > 0 {
		j.User = r.UserID
	}
	j.Mates = append([]job.MateRef(nil), r.Mates...)
	return j, true
}

// ToJobs converts records to simulator jobs. Records rejected by
// JobFromRecord are skipped; the count of skipped records is returned.
func ToJobs(recs []Record) (jobs []*job.Job, skipped int) {
	for _, r := range recs {
		j, ok := JobFromRecord(r)
		if !ok {
			skipped++
			continue
		}
		jobs = append(jobs, j)
	}
	sort.SliceStable(jobs, func(i, k int) bool {
		if jobs[i].SubmitTime != jobs[k].SubmitTime {
			return jobs[i].SubmitTime < jobs[k].SubmitTime
		}
		return jobs[i].ID < jobs[k].ID
	})
	return jobs, skipped
}

// FromJobs converts simulator jobs to records (for tracegen output).
func FromJobs(jobs []*job.Job) []Record {
	recs := make([]Record, 0, len(jobs))
	for _, j := range jobs {
		wait := sim.Duration(-1)
		if j.State == job.Completed {
			wait = j.WaitTime()
		}
		recs = append(recs, Record{
			JobID:    j.ID,
			Submit:   j.SubmitTime,
			Wait:     wait,
			Runtime:  j.Runtime,
			Procs:    j.Nodes,
			ReqProcs: j.Nodes,
			ReqTime:  j.Walltime,
			Status:   1,
			UserID:   j.User,
			Mates:    append([]job.MateRef(nil), j.Mates...),
		})
	}
	return recs
}

// LoadFile reads a trace file and converts it to jobs.
func LoadFile(path string) (*Header, []*job.Job, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	hdr, recs, err := Read(f)
	if err != nil {
		return nil, nil, err
	}
	jobs, _ := ToJobs(recs)
	return hdr, jobs, nil
}

// SaveFile writes jobs to a trace file.
func SaveFile(path string, hdr *Header, jobs []*job.Job) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Write(f, hdr, FromJobs(jobs))
}

package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"cosched/internal/job"
	"cosched/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	jobs, err := workload.Generate(workload.EurekaSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	jobs = jobs[:200]
	jobs[3].Mates = []job.MateRef{{Domain: "intrepid", Job: 77}}
	jobs[5].Mates = []job.MateRef{{Domain: "intrepid", Job: 12}, {Domain: "lens", Job: 9}}

	hdr := NewHeader()
	hdr.Set("System", "Eureka synthetic")
	hdr.Set("Nodes", "100")

	var buf bytes.Buffer
	if err := Write(&buf, hdr, FromJobs(jobs)); err != nil {
		t.Fatal(err)
	}
	gotHdr, recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr.Fields["System"] != "Eureka synthetic" || gotHdr.Fields["Nodes"] != "100" {
		t.Fatalf("header = %+v", gotHdr.Fields)
	}
	got, skipped := ToJobs(recs)
	if skipped != 0 {
		t.Fatalf("skipped %d records", skipped)
	}
	if len(got) != len(jobs) {
		t.Fatalf("got %d jobs, want %d", len(got), len(jobs))
	}
	byID := map[job.ID]*job.Job{}
	for _, j := range got {
		byID[j.ID] = j
	}
	for _, want := range jobs {
		g := byID[want.ID]
		if g == nil {
			t.Fatalf("job %d lost", want.ID)
		}
		if g.SubmitTime != want.SubmitTime || g.Runtime != want.Runtime ||
			g.Nodes != want.Nodes || g.Walltime != want.Walltime {
			t.Fatalf("job %d mismatch: got %+v want %+v", want.ID, g, want)
		}
		if len(g.Mates) != len(want.Mates) {
			t.Fatalf("job %d mates: got %v want %v", want.ID, g.Mates, want.Mates)
		}
		for i := range g.Mates {
			if g.Mates[i] != want.Mates[i] {
				t.Fatalf("job %d mate %d mismatch", want.ID, i)
			}
		}
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	input := `; Version: 2.2
; Computer: test

1 100 -1 600 64 -1 -1 64 900 -1 1 -1 -1 -1 -1 -1 -1 -1
; stray comment without colon value format
2 200 -1 300 32 -1 -1 32 600 -1 1 -1 -1 -1 -1 -1 -1 -1 other:5
`
	hdr, recs, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Fields["Version"] != "2.2" {
		t.Fatalf("header = %+v", hdr.Fields)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if len(recs[1].Mates) != 1 || recs[1].Mates[0] != (job.MateRef{Domain: "other", Job: 5}) {
		t.Fatalf("mates = %+v", recs[1].Mates)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"1 2 3", // too few fields
		"x 100 -1 600 64 -1 -1 64 900 -1 1 -1 -1 -1 -1 -1 -1 -1",          // bad int
		"1 100 -1 600 64 -1 -1 64 900 -1 1 -1 -1 -1 -1 -1 -1 -1 nomcolon", // bad mate
	}
	for _, c := range cases {
		if _, _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("malformed line accepted: %q", c)
		}
	}
}

func TestToJobsSkipsInvalid(t *testing.T) {
	recs := []Record{
		{JobID: 1, Submit: 0, Runtime: 600, Procs: 4},
		{JobID: 2, Submit: 0, Runtime: -1, Procs: 4},   // unknown runtime
		{JobID: 3, Submit: 0, Runtime: 600, Procs: -1}, // unknown procs, no req
		{JobID: 4, Submit: 0, Runtime: 600, Procs: -1, ReqProcs: 8},
	}
	jobs, skipped := ToJobs(recs)
	if len(jobs) != 2 || skipped != 2 {
		t.Fatalf("jobs=%d skipped=%d, want 2/2", len(jobs), skipped)
	}
	if jobs[1].Nodes != 8 {
		t.Fatalf("ReqProcs fallback failed: nodes=%d", jobs[1].Nodes)
	}
}

func TestParseMates(t *testing.T) {
	mates, err := ParseMates("a:1,b:2,c:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(mates) != 3 || mates[2] != (job.MateRef{Domain: "c", Job: 3}) {
		t.Fatalf("mates = %+v", mates)
	}
	for _, bad := range []string{"", "nodomain", ":5", "a:xyz"} {
		if _, err := ParseMates(bad); err == nil {
			t.Errorf("ParseMates(%q) accepted", bad)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.swf")
	jobs, _ := workload.Generate(workload.EurekaSpec(1))
	jobs = jobs[:50]
	hdr := NewHeader()
	hdr.Set("Note", "roundtrip")
	if err := SaveFile(path, hdr, jobs); err != nil {
		t.Fatal(err)
	}
	gotHdr, got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr.Fields["Note"] != "roundtrip" {
		t.Fatalf("header = %+v", gotHdr.Fields)
	}
	if len(got) != 50 {
		t.Fatalf("got %d jobs", len(got))
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, _, err := LoadFile("/nonexistent/path.swf"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWriteSortsBySubmit(t *testing.T) {
	recs := []Record{
		{JobID: 2, Submit: 500, Runtime: 10, Procs: 1},
		{JobID: 1, Submit: 100, Runtime: 10, Procs: 1},
	}
	var buf bytes.Buffer
	if err := Write(&buf, nil, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "1 ") || !strings.HasPrefix(lines[1], "2 ") {
		t.Fatalf("output not sorted:\n%s", buf.String())
	}
}

func TestFromJobsWritesRealWaitWhenCompleted(t *testing.T) {
	j := job.New(1, 4, 100, 600, 600)
	j.State = job.Completed
	j.StartTime = 400
	j.EndTime = 1000
	recs := FromJobs([]*job.Job{j})
	if recs[0].Wait != 300 {
		t.Fatalf("wait = %d, want 300", recs[0].Wait)
	}
	pending := job.New(2, 4, 100, 600, 600)
	recs = FromJobs([]*job.Job{pending})
	if recs[0].Wait != -1 {
		t.Fatalf("pending wait = %d, want -1", recs[0].Wait)
	}
}

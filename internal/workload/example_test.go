package workload_test

import (
	"fmt"

	"cosched/internal/workload"
)

// ExampleGenerate builds the calibrated Intrepid-like month and scales it
// to the paper's high-load operating point.
func ExampleGenerate() {
	jobs, err := workload.Generate(workload.IntrepidSpec(1))
	if err != nil {
		panic(err)
	}
	factor, err := workload.ScaleToUtilization(jobs, 40960, 0.68)
	if err != nil {
		panic(err)
	}
	fmt.Println("jobs:", len(jobs))
	fmt.Println("scaled:", factor > 0)
	fmt.Printf("offered load: %.2f\n", workload.OfferedLoad(jobs, 40960))
	// Output:
	// jobs: 9219
	// scaled: true
	// offered load: 0.68
}

// ExamplePairByWindow links co-submitted jobs across two traces, the
// paper's §V-D association rule.
func ExamplePairByWindow() {
	a, _ := workload.Generate(workload.IntrepidSpec(1))
	b, _ := workload.Generate(workload.EurekaSpec(2))
	pairs := workload.PairByWindow(a, b, "intrepid", "eureka", 120)
	fmt.Println("paired:", pairs > 0)
	// Output:
	// paired: true
}

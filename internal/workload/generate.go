package workload

import (
	"fmt"
	"math"
	"sort"

	"cosched/internal/job"
	"cosched/internal/sim"
)

// SizeClass is one job-size bucket with a selection weight.
type SizeClass struct {
	Nodes  int
	Weight float64
}

// Spec describes one synthetic trace. Generate consumes it
// deterministically from Seed.
type Spec struct {
	Name string
	// Jobs is the number of jobs to generate.
	Jobs int
	// Span is the nominal trace span; mean interarrival = Span/Jobs.
	// ScaleToUtilization later stretches or packs the arrivals.
	Span sim.Duration
	// Sizes is the job-size distribution.
	Sizes []SizeClass
	// RuntimeMu and RuntimeSigma parameterize the lognormal runtime in
	// seconds: exp(mu + sigma·N(0,1)).
	RuntimeMu, RuntimeSigma float64
	// MinRuntime and MaxRuntime clamp runtimes (seconds).
	MinRuntime, MaxRuntime sim.Duration
	// WallFactorMin/Max bound the user walltime overestimate multiplier.
	WallFactorMin, WallFactorMax float64
	// Users is the size of the user population; jobs are attributed with
	// a heavy skew toward low user IDs (a few power users dominate real
	// traces). 0 defaults to Jobs/40, minimum 1.
	Users int
	// DiurnalAmplitude, in [0, 1), modulates the arrival rate over a
	// 24-hour cycle: intensity ∝ 1 + A·sin(2πt/day − π/2), peaking at
	// mid-day and bottoming overnight, as production traces do. 0 keeps
	// a homogeneous Poisson process (the default; the paper-calibration
	// specs leave it off so the §V targets are unchanged).
	DiurnalAmplitude float64
	// Seed selects the random stream.
	Seed uint64
}

// Validate checks the spec.
func (s Spec) Validate() error {
	switch {
	case s.Jobs <= 0:
		return fmt.Errorf("workload: spec %q: Jobs must be positive", s.Name)
	case s.Span <= 0:
		return fmt.Errorf("workload: spec %q: Span must be positive", s.Name)
	case len(s.Sizes) == 0:
		return fmt.Errorf("workload: spec %q: no size classes", s.Name)
	case s.MinRuntime <= 0 || s.MaxRuntime < s.MinRuntime:
		return fmt.Errorf("workload: spec %q: bad runtime clamp [%d,%d]", s.Name, s.MinRuntime, s.MaxRuntime)
	case s.WallFactorMin < 1 || s.WallFactorMax < s.WallFactorMin:
		return fmt.Errorf("workload: spec %q: bad walltime factors [%g,%g]", s.Name, s.WallFactorMin, s.WallFactorMax)
	case s.DiurnalAmplitude < 0 || s.DiurnalAmplitude >= 1:
		return fmt.Errorf("workload: spec %q: diurnal amplitude %g out of [0,1)", s.Name, s.DiurnalAmplitude)
	}
	for _, c := range s.Sizes {
		if c.Nodes <= 0 || c.Weight <= 0 {
			return fmt.Errorf("workload: spec %q: bad size class %+v", s.Name, c)
		}
	}
	return nil
}

// IntrepidSpec models a month of the 2010 Intrepid Blue Gene/P workload:
// 9,219 jobs (the paper's count), power-of-two sizes 512–40,960 nodes
// dominated by the small partitions, lognormal runtimes capped at 12 h.
func IntrepidSpec(seed uint64) Spec {
	return Spec{
		Name: "intrepid",
		Jobs: 9219,
		Span: 30 * sim.Day,
		Sizes: []SizeClass{
			{512, 0.34}, {1024, 0.25}, {2048, 0.16}, {4096, 0.11},
			{8192, 0.07}, {16384, 0.04}, {32768, 0.02}, {40960, 0.01},
		},
		RuntimeMu:     6.80, // exp(6.80) ≈ 900 s ≈ 15 min median
		RuntimeSigma:  1.40, // heavy tail: many short debug runs, some 12 h jobs
		MinRuntime:    2 * sim.Minute,
		MaxRuntime:    12 * sim.Hour,
		WallFactorMin: 1.2,
		WallFactorMax: 3.0,
		Seed:          seed,
	}
}

// EurekaSpec models a month of the Eureka analysis/visualization cluster:
// 100 nodes, sizes 1–100 skewed small, shorter lognormal runtimes.
func EurekaSpec(seed uint64) Spec {
	return Spec{
		Name: "eureka",
		Jobs: 3500,
		Span: 30 * sim.Day,
		Sizes: []SizeClass{
			{1, 0.22}, {2, 0.16}, {4, 0.15}, {8, 0.14},
			{16, 0.13}, {32, 0.10}, {64, 0.06}, {100, 0.04},
		},
		RuntimeMu:     7.10, // exp(7.10) ≈ 1,212 s ≈ 20 min median
		RuntimeSigma:  1.30,
		MinRuntime:    1 * sim.Minute,
		MaxRuntime:    6 * sim.Hour,
		WallFactorMin: 1.2,
		WallFactorMax: 3.0,
		Seed:          seed,
	}
}

// Generate produces the spec's jobs, sorted by submit time with IDs
// 1..Jobs in that order. Arrivals are a Poisson process with mean
// interarrival Span/Jobs.
func Generate(spec Spec) ([]*job.Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := NewRNG(spec.Seed)
	users := spec.Users
	if users <= 0 {
		users = spec.Jobs / 40
	}
	if users < 1 {
		users = 1
	}
	// Real workloads are strongly user-repetitive: the same user resubmits
	// similar jobs, which is what makes history-based runtime prediction
	// (predict.UserAverage) work. Split the runtime variance between a
	// per-user location (drawn once per user) and a smaller within-user
	// spread; the marginal spread stays close to the spec's sigma
	// (√(0.8² + 0.6²) = 1.0).
	userMu := make([]float64, users+1)
	userRNG := NewRNG(spec.Seed ^ 0xA5A5A5A5D00DFEED)
	betweenSigma := spec.RuntimeSigma * 0.8
	withinSigma := spec.RuntimeSigma * 0.6
	for u := 1; u <= users; u++ {
		userMu[u] = spec.RuntimeMu + betweenSigma*userRNG.Normal()
	}
	weights := make([]float64, len(spec.Sizes))
	for i, c := range spec.Sizes {
		weights[i] = c.Weight
	}
	meanGap := float64(spec.Span) / float64(spec.Jobs)

	jobs := make([]*job.Job, 0, spec.Jobs)
	var t float64
	for i := 0; i < spec.Jobs; i++ {
		t += rng.Exp(meanGap)
		if spec.DiurnalAmplitude > 0 {
			// Thinning: resample the gap while the candidate instant is
			// rejected against the diurnal intensity envelope.
			for rng.Float64() >= diurnalIntensity(t, spec.DiurnalAmplitude) {
				t += rng.Exp(meanGap)
			}
		}
		nodes := spec.Sizes[rng.Choice(weights)].Nodes
		// Quadratic skew: user 1 submits the most, the tail rarely.
		fu := rng.Float64()
		user := 1 + int(float64(users)*fu*fu)
		if user > users {
			user = users
		}
		rt := sim.Duration(rng.Lognormal(userMu[user], withinSigma))
		if rt < spec.MinRuntime {
			rt = spec.MinRuntime
		}
		if rt > spec.MaxRuntime {
			rt = spec.MaxRuntime
		}
		wf := spec.WallFactorMin + rng.Float64()*(spec.WallFactorMax-spec.WallFactorMin)
		wall := sim.Duration(float64(rt) * wf)
		// Round walltime up to a 5-minute multiple, as users do.
		if rem := wall % (5 * sim.Minute); rem != 0 {
			wall += 5*sim.Minute - rem
		}
		j := job.New(job.ID(i+1), nodes, sim.Time(t), rt, wall)
		j.Name = fmt.Sprintf("%s-%d", spec.Name, i+1)
		j.User = user
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// diurnalIntensity returns the relative arrival intensity at virtual time
// t (seconds), normalized to peak 1: a sinusoid over the 24-hour cycle
// with trough (1−A)/(1+A) relative to the peak.
func diurnalIntensity(t, amplitude float64) float64 {
	phase := 2*math.Pi*t/float64(sim.Day) - math.Pi/2
	return (1 + amplitude*math.Sin(phase)) / (1 + amplitude)
}

// OfferedLoad returns total demand (node-seconds) divided by capacity over
// the trace's span (first submit to last submit + last runtime). It is the
// utilization the system would reach if it never idled a needed node.
func OfferedLoad(jobs []*job.Job, totalNodes int) float64 {
	if len(jobs) == 0 || totalNodes <= 0 {
		return 0
	}
	var demand int64
	var end sim.Time
	start := jobs[0].SubmitTime
	for _, j := range jobs {
		demand += j.NodeSeconds()
		if j.SubmitTime < start {
			start = j.SubmitTime
		}
		if e := j.SubmitTime + j.Runtime; e > end {
			end = e
		}
	}
	span := end - start
	if span <= 0 {
		return 0
	}
	return float64(demand) / (float64(totalNodes) * float64(span))
}

// ScaleToUtilization rescales every arrival interval by one constant factor
// (the paper's §V-D method) so the trace's offered load becomes target.
// The arrival distribution's shape is preserved exactly. Jobs must be
// sorted by submit time; they are modified in place and the applied factor
// is returned.
func ScaleToUtilization(jobs []*job.Job, totalNodes int, target float64) (factor float64, err error) {
	if target <= 0 || target > 1.5 {
		return 0, fmt.Errorf("workload: utilization target %g out of range (0, 1.5]", target)
	}
	if !sort.SliceIsSorted(jobs, func(a, b int) bool { return jobs[a].SubmitTime < jobs[b].SubmitTime }) {
		return 0, fmt.Errorf("workload: jobs not sorted by submit time")
	}
	cur := OfferedLoad(jobs, totalNodes)
	if cur <= 0 {
		return 0, fmt.Errorf("workload: trace has zero offered load")
	}
	// Offered load scales inversely with span; span scales with factor.
	factor = cur / target
	base := jobs[0].SubmitTime
	prev := base
	var acc float64
	for i, j := range jobs {
		if i == 0 {
			continue
		}
		gap := float64(j.SubmitTime - prev)
		prev = j.SubmitTime
		acc += gap * factor
		j.SubmitTime = base + sim.Time(acc)
	}
	return factor, nil
}

// Clone deep-copies a trace so one generated workload can be replayed under
// many configurations.
func Clone(jobs []*job.Job) []*job.Job {
	out := make([]*job.Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.Clone()
	}
	return out
}

// TotalDemand sums nodes × runtime over the trace.
func TotalDemand(jobs []*job.Job) int64 {
	var d int64
	for _, j := range jobs {
		d += j.NodeSeconds()
	}
	return d
}

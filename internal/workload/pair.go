package workload

import (
	"fmt"
	"sort"

	"cosched/internal/job"
	"cosched/internal/sim"
)

// PairByWindow links jobs across two traces whose submission times fall
// within window of each other, the paper's §V-D association rule ("we
// associated the two jobs on different machines if their submission times
// were within 2 minutes"). Each job gets at most one mate; earlier
// submissions are matched first. It returns the number of pairs formed.
//
// domA and domB are the domain names the two traces will run in; both
// traces must already be sorted by submit time.
func PairByWindow(a, b []*job.Job, domA, domB string, window sim.Duration) int {
	pairs := 0
	bi := 0
	for _, ja := range a {
		if ja.Paired() {
			continue
		}
		// Advance bi past b-jobs too early to match or already paired.
		for bi < len(b) && (b[bi].Paired() || b[bi].SubmitTime < ja.SubmitTime-window) {
			bi++
		}
		if bi >= len(b) {
			break
		}
		jb := b[bi]
		if jb.SubmitTime > ja.SubmitTime+window {
			continue // no b-job close enough; try next a-job
		}
		link(ja, jb, domA, domB)
		pairs++
		bi++
	}
	return pairs
}

// PairByProportion links round(p·min(len(a), len(b))) pairs, chosen
// rank-wise: both traces are viewed in submit order and the i-th selected
// a-job is linked to the equally ranked b-job, so mates arrive close
// together without perturbing either arrival process. Selection of which
// ranks participate is uniform from rng. It returns the number of pairs.
func PairByProportion(rng *RNG, a, b []*job.Job, domA, domB string, p float64) (int, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("workload: pair proportion %g out of [0,1]", p)
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	return PairCount(rng, a, b, domA, domB, int(float64(n)*p+0.5))
}

// PairCount links exactly want rank-wise pairs (capped by the shorter
// trace), selected uniformly by rng, as PairByProportion does. It lets a
// caller derive the pair budget from a different population than the
// slices being paired — e.g. a size-filtered eligible subset of a larger
// trace.
func PairCount(rng *RNG, a, b []*job.Job, domA, domB string, want int) (int, error) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if want > n {
		return 0, fmt.Errorf("workload: want %d pairs from %d eligible", want, n)
	}
	if want <= 0 {
		return 0, nil
	}
	sa := bySubmit(a)
	sb := bySubmit(b)
	perm := rng.Perm(n)
	picked := perm[:want]
	sort.Ints(picked)
	for _, i := range picked {
		if sa[i].Paired() || sb[i].Paired() {
			continue
		}
		link(sa[i], sb[i], domA, domB)
	}
	return want, nil
}

// PairNearest links up to want pairs, choosing a-jobs uniformly at random
// and linking each to the nearest-in-submit-time unpaired b-job within
// maxGap. Unlike rank-wise pairing it is robust to the two traces spanning
// slightly different periods: mates are always temporally close, as real
// associated submissions are. It returns the number of pairs formed, which
// may be less than want when candidates run out.
func PairNearest(rng *RNG, a, b []*job.Job, domA, domB string, want int, maxGap sim.Duration) int {
	if want <= 0 || len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := bySubmit(a)
	sb := bySubmit(b)
	paired := 0
	for _, ai := range rng.Perm(len(sa)) {
		if paired >= want {
			break
		}
		ja := sa[ai]
		if ja.Paired() {
			continue
		}
		bi := nearestUnpaired(sb, ja.SubmitTime, maxGap)
		if bi < 0 {
			continue
		}
		link(ja, sb[bi], domA, domB)
		paired++
	}
	return paired
}

// nearestUnpaired returns the index of the unpaired job in sorted whose
// submit time is closest to t and within maxGap, or -1.
func nearestUnpaired(sorted []*job.Job, t sim.Time, maxGap sim.Duration) int {
	idx := sort.Search(len(sorted), func(i int) bool { return sorted[i].SubmitTime >= t })
	lo, hi := idx-1, idx
	for lo >= 0 || hi < len(sorted) {
		loGap, hiGap := sim.Duration(-1), sim.Duration(-1)
		for lo >= 0 {
			if g := t - sorted[lo].SubmitTime; g > maxGap {
				lo = -1
				break
			} else if sorted[lo].Paired() {
				lo--
			} else {
				loGap = t - sorted[lo].SubmitTime
				break
			}
		}
		for hi < len(sorted) {
			if g := sorted[hi].SubmitTime - t; g > maxGap {
				hi = len(sorted)
				break
			} else if sorted[hi].Paired() {
				hi++
			} else {
				hiGap = sorted[hi].SubmitTime - t
				break
			}
		}
		switch {
		case loGap >= 0 && (hiGap < 0 || loGap <= hiGap):
			return lo
		case hiGap >= 0:
			return hi
		default:
			return -1
		}
	}
	return -1
}

// Eligible returns the jobs requesting at most maxNodes, preserving order.
// The experiment harness uses it to restrict coscheduling pairs to the
// small-to-moderate jobs that realistically have an analysis counterpart
// (a full-machine capability run is not co-scheduled with a live
// visualization).
func Eligible(jobs []*job.Job, maxNodes int) []*job.Job {
	out := make([]*job.Job, 0, len(jobs))
	for _, j := range jobs {
		if j.Nodes <= maxNodes {
			out = append(out, j)
		}
	}
	return out
}

// link records the two-way mate relationship.
func link(ja, jb *job.Job, domA, domB string) {
	ja.Mates = append(ja.Mates, job.MateRef{Domain: domB, Job: jb.ID})
	jb.Mates = append(jb.Mates, job.MateRef{Domain: domA, Job: ja.ID})
}

// LinkGroup links one job per domain into an N-way co-start group (the
// paper's future-work extension): every job lists every other as a mate.
// domains[i] names the domain jobs[i] runs in. Domains must be distinct.
func LinkGroup(jobs []*job.Job, domains []string) error {
	if len(jobs) != len(domains) {
		return fmt.Errorf("workload: LinkGroup: %d jobs vs %d domains", len(jobs), len(domains))
	}
	seen := make(map[string]bool, len(domains))
	for _, d := range domains {
		if seen[d] {
			return fmt.Errorf("workload: LinkGroup: duplicate domain %q", d)
		}
		seen[d] = true
	}
	for i, j := range jobs {
		for k, m := range jobs {
			if i == k {
				continue
			}
			j.Mates = append(j.Mates, job.MateRef{Domain: domains[k], Job: m.ID})
		}
	}
	return nil
}

// PairedFraction returns the fraction of jobs in the trace that have at
// least one mate.
func PairedFraction(jobs []*job.Job) float64 {
	if len(jobs) == 0 {
		return 0
	}
	n := 0
	for _, j := range jobs {
		if j.Paired() {
			n++
		}
	}
	return float64(n) / float64(len(jobs))
}

// bySubmit returns the jobs sorted by submit time (stable on ID) without
// modifying the input slice.
func bySubmit(jobs []*job.Job) []*job.Job {
	out := append([]*job.Job(nil), jobs...)
	sort.SliceStable(out, func(i, k int) bool {
		if out[i].SubmitTime != out[k].SubmitTime {
			return out[i].SubmitTime < out[k].SubmitTime
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Package workload generates and calibrates synthetic job traces shaped
// like the 2010 Intrepid and Eureka production workloads the paper
// evaluates on, and assigns cross-domain job pairs.
//
// The real traces are not public, so the generators target the statistics
// the paper publishes: job counts (9,219 Intrepid jobs/month), size ranges
// (512–40,960 nodes on Intrepid, 1–100 on Eureka), and target utilization
// rates. Load variation uses the paper's own method: multiply every
// arrival interval by one constant factor so the arrival distribution's
// shape is preserved (§V-D).
package workload

import "math"

// RNG is a deterministic splitmix64 pseudo-random generator. It is
// self-contained so traces are bit-reproducible across Go releases, which
// math/rand does not guarantee.
type RNG struct{ state uint64 }

// NewRNG seeds a generator; distinct seeds give independent streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw 64-bit value (splitmix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n).
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("workload: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	//simlint:allow R5 exact-zero rejection before Log: only the bit pattern 0.0 is invalid
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a standard normal variate (Box–Muller).
func (r *RNG) Normal() float64 {
	u1 := r.Float64()
	//simlint:allow R5 exact-zero rejection before Log: only the bit pattern 0.0 is invalid
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Lognormal returns exp(mu + sigma·N(0,1)) — the standard batch-workload
// runtime model.
func (r *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Choice returns an index in [0, len(weights)) with probability
// proportional to the weights.
func (r *RNG) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes n elements via the swap function (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

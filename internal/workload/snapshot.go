package workload

import (
	"cosched/internal/arena"
	"cosched/internal/job"
	"cosched/internal/sim"
)

// Snapshot is a frozen struct-of-arrays copy of a fully prepared trace
// (generated, utilization-scaled, and mate-paired). One snapshot is built
// per (sweep point, repetition) and shared read-only by every simulation
// cell replaying that workload; each cell materializes private mutable Job
// structs from it instead of regenerating — or deep-cloning — the trace.
//
// The copy-on-write contract: everything inside the snapshot is immutable.
// Name strings are shared (string headers are safe to alias), and mate
// slices are handed out with capacity clamped to their length, so a cell
// that appends to a materialized job's Mates reallocates instead of writing
// into the shared backing array. A materialized job is field-for-field
// identical to what workload.Clone of the captured trace would produce, so
// simulations driven from a snapshot are byte-identical to clone-driven
// ones.
type Snapshot struct {
	ids       []job.ID
	names     []string
	users     []int32
	nodes     []int32
	runtimes  []sim.Duration
	walltimes []sim.Duration
	submits   []sim.Time
	mateOff   []int32       // mates of job i: mates[mateOff[i]:mateOff[i+1]]
	mates     []job.MateRef // flattened linkage, shared by all cells
}

// Capture freezes jobs into a snapshot. Call it after all trace
// preparation (ScaleToUtilization, pairing) — later mutation of the source
// jobs is not reflected. Only request fields and mate linkage are
// captured; scheduling state is discarded, as Clone discards it.
func Capture(jobs []*job.Job) *Snapshot {
	n := len(jobs)
	s := &Snapshot{
		ids:       make([]job.ID, n),
		names:     make([]string, n),
		users:     make([]int32, n),
		nodes:     make([]int32, n),
		runtimes:  make([]sim.Duration, n),
		walltimes: make([]sim.Duration, n),
		submits:   make([]sim.Time, n),
		mateOff:   make([]int32, n+1),
	}
	total := 0
	for _, j := range jobs {
		total += len(j.Mates)
	}
	s.mates = make([]job.MateRef, 0, total)
	for i, j := range jobs {
		s.ids[i] = j.ID
		s.names[i] = j.Name
		s.users[i] = int32(j.User)
		s.nodes[i] = int32(j.Nodes)
		s.runtimes[i] = j.Runtime
		s.walltimes[i] = j.Walltime
		s.submits[i] = j.SubmitTime
		s.mateOff[i] = int32(len(s.mates))
		s.mates = append(s.mates, j.Mates...)
	}
	s.mateOff[n] = int32(len(s.mates))
	return s
}

// Len returns the number of jobs in the snapshot.
func (s *Snapshot) Len() int { return len(s.ids) }

// MaterializeInto builds the snapshot's jobs as fresh Unsubmitted structs
// allocated from a, reusing dst's backing array for the pointer slice.
// Arena and dst can be recycled cell after cell, making repeated
// materialization allocation-free at steady state.
func (s *Snapshot) MaterializeInto(a *arena.Arena[job.Job], dst []*job.Job) []*job.Job {
	if cap(dst) < len(s.ids) {
		dst = make([]*job.Job, 0, len(s.ids))
	}
	dst = dst[:0]
	for i := range s.ids {
		j := a.Get()
		j.ID = s.ids[i]
		j.Name = s.names[i]
		j.User = int(s.users[i])
		j.Nodes = int(s.nodes[i])
		j.Runtime = s.runtimes[i]
		j.Walltime = s.walltimes[i]
		j.SubmitTime = s.submits[i]
		if off, end := s.mateOff[i], s.mateOff[i+1]; off < end {
			// Three-index slice: len == cap, so a cell appending mates
			// copies out instead of scribbling on the shared array.
			j.Mates = s.mates[off:end:end]
		}
		// State/accounting fields are zero from the arena, which matches
		// job.Clone's reset (State Unsubmitted, timestamps and counts 0).
		dst = append(dst, j)
	}
	return dst
}

// Materialize is MaterializeInto with heap-allocated jobs — the convenience
// form for callers without an arena to recycle.
func (s *Snapshot) Materialize() []*job.Job {
	var a arena.Arena[job.Job]
	return s.MaterializeInto(&a, nil)
}

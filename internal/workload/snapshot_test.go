package workload

import (
	"reflect"
	"testing"

	"cosched/internal/arena"
	"cosched/internal/job"
)

// pairedFixture builds a scaled, paired two-trace fixture the way the
// experiment harness does.
func pairedFixture(t *testing.T) ([]*job.Job, []*job.Job) {
	t.Helper()
	ispec := IntrepidSpec(7)
	ispec.Jobs = 400
	espec := EurekaSpec(11)
	espec.Jobs = 150
	ij, err := Generate(ispec)
	if err != nil {
		t.Fatal(err)
	}
	ej, err := Generate(espec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScaleToUtilization(ij, 40960, 0.7); err != nil {
		t.Fatal(err)
	}
	PairByWindow(ij, ej, "intrepid", "eureka", 30*60)
	return ij, ej
}

func TestMaterializeMatchesClone(t *testing.T) {
	ij, ej := pairedFixture(t)
	for _, jobs := range [][]*job.Job{ij, ej} {
		want := Clone(jobs)
		got := Capture(jobs).Materialize()
		if len(got) != len(want) {
			t.Fatalf("len=%d want %d", len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(*got[i], *want[i]) {
				t.Fatalf("job %d differs:\n got %+v\nwant %+v", i, *got[i], *want[i])
			}
		}
	}
}

func TestMaterializeCOWMates(t *testing.T) {
	ij, _ := pairedFixture(t)
	snap := Capture(ij)
	a := snap.Materialize()
	b := snap.Materialize()
	var touched int
	for i, j := range a {
		if len(j.Mates) == 0 {
			continue
		}
		touched++
		// Appending must not grow into the shared backing array.
		j.Mates = append(j.Mates, job.MateRef{Domain: "evil", Job: 999})
		if got := b[i].Mates; len(got) != 1 || got[0].Domain == "evil" {
			t.Fatalf("append leaked into sibling materialization: %+v", got)
		}
		// In-place writes through the original window are the caller's
		// contract violation; the append path is what the scheduler does.
	}
	if touched == 0 {
		t.Fatal("fixture produced no paired jobs; test is vacuous")
	}
	c := snap.Materialize()
	for i, j := range c {
		if len(j.Mates) > 0 && j.Mates[0].Domain == "evil" {
			t.Fatalf("shared mate array corrupted at %d", i)
		}
	}
}

func TestMaterializeIntoSteadyStateZeroAlloc(t *testing.T) {
	ij, _ := pairedFixture(t)
	snap := Capture(ij)
	var a arena.Arena[job.Job]
	dst := snap.MaterializeInto(&a, nil)
	allocs := testing.AllocsPerRun(10, func() {
		a.Reset()
		dst = snap.MaterializeInto(&a, dst)
	})
	if allocs != 0 {
		t.Fatalf("steady-state materialize allocated %.1f/run, want 0", allocs)
	}
	if len(dst) != snap.Len() {
		t.Fatalf("len=%d want %d", len(dst), snap.Len())
	}
}

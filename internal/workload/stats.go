package workload

import (
	"fmt"
	"sort"
	"strings"

	"cosched/internal/job"
	"cosched/internal/metrics"
	"cosched/internal/sim"
)

// TraceStats summarizes a job trace the way scheduler papers report
// workloads: counts, span, offered load, and the size/runtime/interarrival
// distributions. cmd/traceinfo renders it; the generators' tests assert
// calibration against it.
type TraceStats struct {
	Jobs  int
	Users int
	Span  sim.Duration // first submit → last completion (submit+runtime)

	TotalNodeSeconds int64
	OfferedLoad      float64 // vs the given machine size

	Runtime      metrics.Summary // seconds
	Walltime     metrics.Summary // seconds
	WallOverReq  metrics.Summary // walltime / runtime (user overestimate)
	Nodes        metrics.Summary
	Interarrival metrics.Summary // seconds between consecutive submissions

	SizeHistogram []SizeBucket
	Paired        int
}

// SizeBucket is one row of the node-count histogram.
type SizeBucket struct {
	Nodes int
	Count int
}

// Analyze computes TraceStats for jobs on a machine of totalNodes.
func Analyze(jobs []*job.Job, totalNodes int) TraceStats {
	st := TraceStats{Jobs: len(jobs)}
	if len(jobs) == 0 {
		return st
	}
	sorted := bySubmit(jobs)
	var runtimes, walls, overs, nodes, gaps []float64
	users := map[int]bool{}
	sizes := map[int]int{}
	var first, last sim.Time
	first = sorted[0].SubmitTime
	for i, j := range sorted {
		runtimes = append(runtimes, float64(j.Runtime))
		walls = append(walls, float64(j.Walltime))
		if j.Runtime > 0 {
			overs = append(overs, float64(j.Walltime)/float64(j.Runtime))
		}
		nodes = append(nodes, float64(j.Nodes))
		users[j.User] = true
		sizes[j.Nodes]++
		st.TotalNodeSeconds += j.NodeSeconds()
		if j.Paired() {
			st.Paired++
		}
		if e := j.SubmitTime + j.Runtime; e > last {
			last = e
		}
		if i > 0 {
			gaps = append(gaps, float64(j.SubmitTime-sorted[i-1].SubmitTime))
		}
	}
	st.Users = len(users)
	st.Span = last - first
	st.OfferedLoad = OfferedLoad(jobs, totalNodes)
	st.Runtime = metrics.Summarize(runtimes)
	st.Walltime = metrics.Summarize(walls)
	st.WallOverReq = metrics.Summarize(overs)
	st.Nodes = metrics.Summarize(nodes)
	st.Interarrival = metrics.Summarize(gaps)
	for n, c := range sizes {
		st.SizeHistogram = append(st.SizeHistogram, SizeBucket{Nodes: n, Count: c})
	}
	sort.Slice(st.SizeHistogram, func(a, b int) bool {
		return st.SizeHistogram[a].Nodes < st.SizeHistogram[b].Nodes
	})
	return st
}

// Render formats the stats as the report cmd/traceinfo prints.
func (st TraceStats) Render(name string, totalNodes int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (machine %d nodes)\n", name, totalNodes)
	fmt.Fprintf(&b, "  jobs: %d  users: %d  paired: %d (%.1f%%)\n",
		st.Jobs, st.Users, st.Paired, pct(st.Paired, st.Jobs))
	fmt.Fprintf(&b, "  span: %.1f days  demand: %.0f node-hours  offered load: %.3f\n",
		float64(st.Span)/86400, float64(st.TotalNodeSeconds)/3600, st.OfferedLoad)
	row := func(label string, s metrics.Summary, scale float64, unit string) {
		fmt.Fprintf(&b, "  %-13s mean %8.1f%s  median %8.1f%s  p90 %8.1f%s  max %8.1f%s\n",
			label, s.Mean/scale, unit, s.Median/scale, unit, s.P90/scale, unit, s.Max/scale, unit)
	}
	row("runtime:", st.Runtime, 60, "m")
	row("walltime:", st.Walltime, 60, "m")
	row("overestimate:", st.WallOverReq, 1, "x")
	row("nodes:", st.Nodes, 1, " ")
	row("interarrival:", st.Interarrival, 60, "m")
	fmt.Fprintf(&b, "  size histogram:\n")
	for _, bkt := range st.SizeHistogram {
		fmt.Fprintf(&b, "    %6d nodes: %6d jobs (%.1f%%)\n", bkt.Nodes, bkt.Count, pct(bkt.Count, st.Jobs))
	}
	return b.String()
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

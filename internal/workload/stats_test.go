package workload

import (
	"testing"

	"cosched/internal/job"
	"cosched/internal/sim"
)

// TestAnalyzeRenderTwiceIdentical guards the ordered output behind
// cmd/traceinfo: Analyze builds its size histogram through a map, so two
// full analyze+render passes over the same trace must stay
// byte-identical — a map-order leak into the rendered buckets fails
// here.
func TestAnalyzeRenderTwiceIdentical(t *testing.T) {
	var jobs []*job.Job
	for i := 1; i <= 60; i++ {
		// 20 distinct size classes exercise the histogram map.
		j := job.New(job.ID(i), 1+(i*7)%20, sim.Time(i*30), sim.Duration(60+i), sim.Duration(120+i))
		j.User = i % 7
		jobs = append(jobs, j)
	}
	render := func() string {
		st := Analyze(jobs, 512)
		return st.Render("probe", 512)
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("trace stats render not reproducible:\n%s\nvs\n%s", a, b)
	}
}

package workload

import (
	"fmt"
	"io"
	"sort"

	"cosched/internal/job"
	"cosched/internal/metrics"
	"cosched/internal/sim"
)

// JobIter is a pull source of jobs in (SubmitTime, ID) order, ending with
// io.EOF. It is the streaming counterpart of a materialized []*job.Job from
// trace.ToJobs: consumers (AnalyzeStream, resmgr's streaming replay) hold
// only a bounded window of jobs at a time, so trace length stops being a
// memory term. trace.JobStream and resmgr.JobSource share this shape;
// any of them satisfies the others structurally.
type JobIter interface {
	// NextJob returns the next job, or io.EOF when the source is drained.
	NextJob() (*job.Job, error)
}

// RepeatStream yields reps offset copies of a base trace — e.g. a year of
// load from a one-month base — without ever materializing the repetition.
// Copy k shifts submit times by k×period and job IDs by k×idStride, and
// remaps mate references by the same ID stride so cross-domain pairs stay
// aligned when both domains repeat with a common stride.
//
// Each yielded job is a fresh allocation: jobs carry mutable simulation
// state, so copies must not alias the base.
type RepeatStream struct {
	base     []*job.Job
	reps     int
	period   sim.Duration
	idStride job.ID
	rep, idx int
}

// NewRepeatStream sorts base into (SubmitTime, ID) order and prepares reps
// copies. period must exceed the largest base submit time so the output
// stays submit-sorted across copy boundaries. idStride 0 derives
// max(base ID)+1; pass an explicit common stride when two paired domains
// must stay consistent.
func NewRepeatStream(base []*job.Job, reps int, period sim.Duration, idStride job.ID) (*RepeatStream, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("workload: reps %d must be positive", reps)
	}
	sorted := bySubmit(base)
	var maxSubmit sim.Time
	var maxID job.ID
	for _, j := range sorted {
		if j.SubmitTime > maxSubmit {
			maxSubmit = j.SubmitTime
		}
		if j.ID > maxID {
			maxID = j.ID
		}
	}
	if len(sorted) > 0 && reps > 1 && period <= sim.Duration(maxSubmit) {
		return nil, fmt.Errorf("workload: repeat period %d must exceed max base submit %d to keep the stream sorted", period, maxSubmit)
	}
	if idStride == 0 {
		idStride = maxID + 1
	}
	return &RepeatStream{base: sorted, reps: reps, period: period, idStride: idStride}, nil
}

// Jobs returns the total number of jobs the stream will yield.
func (r *RepeatStream) Jobs() int { return len(r.base) * r.reps }

// IDStride returns the per-copy ID offset in use (after derivation).
func (r *RepeatStream) IDStride() job.ID { return r.idStride }

// NextJob yields the next copy, io.EOF after the last repetition.
func (r *RepeatStream) NextJob() (*job.Job, error) {
	if r.idx >= len(r.base) {
		r.rep++
		r.idx = 0
	}
	if r.rep >= r.reps || len(r.base) == 0 {
		return nil, io.EOF
	}
	b := r.base[r.idx]
	r.idx++
	idOff := job.ID(r.rep) * r.idStride
	j := job.New(b.ID+idOff, b.Nodes, b.SubmitTime+sim.Time(r.rep)*sim.Time(r.period), b.Runtime, b.Walltime)
	j.User = b.User
	if len(b.Mates) > 0 {
		j.Mates = make([]job.MateRef, len(b.Mates))
		for i, m := range b.Mates {
			j.Mates[i] = job.MateRef{Domain: m.Domain, Job: m.Job + idOff}
		}
	}
	return j, nil
}

// AnalyzeStream computes TraceStats from a job stream in one pass and
// bounded memory: exact ValueDists (one counter per distinct value) replace
// the per-job []float64 buffers, so the result — and hence Render — is
// byte-identical to Analyze on the materialized slice, while peak memory is
// independent of trace length. The source must be submit-sorted (JobIter's
// contract); a violation is an error.
func AnalyzeStream(src JobIter, totalNodes int) (TraceStats, error) {
	var st TraceStats
	var runtimes, walls, overs, nodes, gaps metrics.ValueDist
	users := map[int]bool{}
	sizes := map[int]int{}
	var first, last, prev sim.Time
	var demand int64
	for {
		j, err := src.NextJob()
		if err == io.EOF {
			break
		}
		if err != nil {
			return TraceStats{}, err
		}
		if st.Jobs > 0 && j.SubmitTime < prev {
			return TraceStats{}, fmt.Errorf("workload: AnalyzeStream source not sorted: t=%d after t=%d", j.SubmitTime, prev)
		}
		if st.Jobs == 0 {
			first = j.SubmitTime
		} else {
			gaps.Add(float64(j.SubmitTime - prev))
		}
		prev = j.SubmitTime
		st.Jobs++
		runtimes.Add(float64(j.Runtime))
		walls.Add(float64(j.Walltime))
		if j.Runtime > 0 {
			overs.Add(float64(j.Walltime) / float64(j.Runtime))
		}
		nodes.Add(float64(j.Nodes))
		users[j.User] = true
		sizes[j.Nodes]++
		st.TotalNodeSeconds += j.NodeSeconds()
		demand += j.NodeSeconds()
		if j.Paired() {
			st.Paired++
		}
		if e := j.SubmitTime + j.Runtime; e > last {
			last = e
		}
	}
	if st.Jobs == 0 {
		return st, nil
	}
	st.Users = len(users)
	st.Span = last - first
	// OfferedLoad over the same ints Analyze feeds it: demand / (nodes × span).
	if totalNodes > 0 {
		if span := last - first; span > 0 {
			st.OfferedLoad = float64(demand) / (float64(totalNodes) * float64(span))
		}
	}
	st.Runtime = runtimes.Summary()
	st.Walltime = walls.Summary()
	st.WallOverReq = overs.Summary()
	st.Nodes = nodes.Summary()
	st.Interarrival = gaps.Summary()
	for n, c := range sizes {
		st.SizeHistogram = append(st.SizeHistogram, SizeBucket{Nodes: n, Count: c})
	}
	sort.Slice(st.SizeHistogram, func(a, b int) bool {
		return st.SizeHistogram[a].Nodes < st.SizeHistogram[b].Nodes
	})
	return st, nil
}

// SliceIter adapts a materialized, submit-sorted job slice to JobIter — the
// bridge the differential tests use to compare streaming and materialized
// paths over identical jobs.
type SliceIter struct {
	jobs []*job.Job
	idx  int
}

// NewSliceIter wraps jobs (must already be in (SubmitTime, ID) order).
func NewSliceIter(jobs []*job.Job) *SliceIter { return &SliceIter{jobs: jobs} }

// NextJob implements JobIter.
func (s *SliceIter) NextJob() (*job.Job, error) {
	if s.idx >= len(s.jobs) {
		return nil, io.EOF
	}
	j := s.jobs[s.idx]
	s.idx++
	return j, nil
}

package workload

import (
	"io"
	"reflect"
	"testing"

	"cosched/internal/job"
	"cosched/internal/sim"
)

// genStatsTrace builds a workload exercising the stats paths: duplicate
// submit seconds, many size classes, paired jobs, runtime/walltime spread.
func genStatsTrace(n int) []*job.Job {
	var jobs []*job.Job
	for i := 1; i <= n; i++ {
		j := job.New(job.ID(i), 1+(i*7)%20, sim.Time((i/3)*30), sim.Duration(60+i%500), sim.Duration(120+i%900))
		j.User = i % 7
		if i%5 == 0 {
			j.Mates = []job.MateRef{{Domain: "x", Job: job.ID(i)}}
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// TestAnalyzeStreamMatchesAnalyze is the tentpole contract for streaming
// trace statistics: every field of TraceStats — and therefore every byte
// of the rendered report — must equal the materialized Analyze, not merely
// approximate it.
func TestAnalyzeStreamMatchesAnalyze(t *testing.T) {
	for _, n := range []int{0, 1, 2, 60, 777} {
		jobs := genStatsTrace(n)
		want := Analyze(jobs, 512)
		got, err := AnalyzeStream(NewSliceIter(bySubmit(jobs)), 512)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if a, b := got.Render("probe", 512), want.Render("probe", 512); a != b {
			t.Fatalf("n=%d: streamed stats render differs:\n%s\nvs\n%s", n, a, b)
		}
		// Render only shows mean/median/p90/max; compare the structs too so
		// P99/Stddev/Min stay exact.
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: stats structs differ:\n got %+v\nwant %+v", n, got, want)
		}
	}
}

func TestAnalyzeStreamRejectsUnsorted(t *testing.T) {
	jobs := []*job.Job{
		job.New(1, 4, 100, 60, 60),
		job.New(2, 4, 50, 60, 60),
	}
	if _, err := AnalyzeStream(NewSliceIter(jobs), 512); err == nil {
		t.Fatal("unsorted source accepted")
	}
}

func TestRepeatStreamSortedAndOffset(t *testing.T) {
	base := []*job.Job{
		job.New(3, 8, 200, 300, 400),
		job.New(1, 4, 0, 60, 60),
		job.New(2, 2, 200, 100, 100),
	}
	base[1].Mates = []job.MateRef{{Domain: "eureka", Job: 1}}
	rs, err := NewRepeatStream(base, 3, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Jobs() != 9 {
		t.Fatalf("Jobs() = %d, want 9", rs.Jobs())
	}
	if rs.IDStride() != 4 {
		t.Fatalf("IDStride = %d, want maxID+1 = 4", rs.IDStride())
	}
	var got []*job.Job
	var prev sim.Time
	seen := map[job.ID]bool{}
	for {
		j, err := rs.NextJob()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if j.SubmitTime < prev {
			t.Fatalf("stream went backwards: t=%d after t=%d", j.SubmitTime, prev)
		}
		prev = j.SubmitTime
		if seen[j.ID] {
			t.Fatalf("duplicate ID %d", j.ID)
		}
		seen[j.ID] = true
		got = append(got, j)
	}
	if len(got) != 9 {
		t.Fatalf("yielded %d jobs, want 9", len(got))
	}
	// Copy 2 of job 1: ID 1+2*4=9, submit 0+2*1000=2000, mate remapped.
	var copy2 *job.Job
	for _, j := range got {
		if j.ID == 9 {
			copy2 = j
		}
	}
	if copy2 == nil || copy2.SubmitTime != 2000 {
		t.Fatalf("copy 2 of job 1 wrong: %+v", copy2)
	}
	if len(copy2.Mates) != 1 || copy2.Mates[0].Job != 9 || copy2.Mates[0].Domain != "eureka" {
		t.Fatalf("mate not remapped: %+v", copy2.Mates)
	}
	// Copies must not alias base jobs.
	for _, j := range got {
		for _, b := range base {
			if j == b {
				t.Fatal("stream yielded an aliased base job")
			}
		}
	}
}

func TestRepeatStreamRejectsShortPeriod(t *testing.T) {
	base := []*job.Job{job.New(1, 4, 500, 60, 60)}
	if _, err := NewRepeatStream(base, 2, 500, 0); err == nil {
		t.Fatal("period <= max submit accepted")
	}
	if _, err := NewRepeatStream(base, 1, 0, 0); err != nil {
		t.Fatalf("single rep should not need a period: %v", err)
	}
	if _, err := NewRepeatStream(base, 0, 1000, 0); err == nil {
		t.Fatal("zero reps accepted")
	}
}

package workload

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"cosched/internal/job"
	"cosched/internal/sim"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(100)
	}
	mean := sum / n
	if math.Abs(mean-100) > 2 {
		t.Fatalf("exp mean = %g, want ≈100", mean)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sq += x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %g, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %g, want ≈1", variance)
	}
}

func TestRNGChoiceWeights(t *testing.T) {
	r := NewRNG(11)
	weights := []float64{1, 3}
	counts := [2]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Choice(weights)]++
	}
	frac := float64(counts[1]) / n
	if math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("weighted choice frac = %g, want ≈0.75", frac)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestGenerateBasicShape(t *testing.T) {
	spec := IntrepidSpec(1)
	jobs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != spec.Jobs {
		t.Fatalf("generated %d jobs, want %d", len(jobs), spec.Jobs)
	}
	if !sort.SliceIsSorted(jobs, func(a, b int) bool { return jobs[a].SubmitTime < jobs[b].SubmitTime }) {
		t.Fatal("jobs not sorted by submit time")
	}
	sizes := map[int]bool{}
	for i, j := range jobs {
		if j.ID != job.ID(i+1) {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		if j.Runtime < spec.MinRuntime || j.Runtime > spec.MaxRuntime {
			t.Fatalf("job %d runtime %d outside clamp", i, j.Runtime)
		}
		if j.Walltime < j.Runtime {
			t.Fatalf("job %d walltime < runtime", i)
		}
		if j.Walltime%(5*sim.Minute) != 0 {
			t.Fatalf("job %d walltime %d not a 5-minute multiple", i, j.Walltime)
		}
		sizes[j.Nodes] = true
	}
	for _, c := range spec.Sizes {
		if !sizes[c.Nodes] {
			t.Errorf("size class %d never drawn in %d jobs", c.Nodes, spec.Jobs)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(EurekaSpec(5))
	b, _ := Generate(EurekaSpec(5))
	for i := range a {
		if a[i].SubmitTime != b[i].SubmitTime || a[i].Runtime != b[i].Runtime || a[i].Nodes != b[i].Nodes {
			t.Fatalf("generation not deterministic at job %d", i)
		}
	}
}

func TestGenerateValidatesSpec(t *testing.T) {
	bad := IntrepidSpec(1)
	bad.Jobs = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("zero-job spec accepted")
	}
	bad = IntrepidSpec(1)
	bad.Sizes = nil
	if _, err := Generate(bad); err == nil {
		t.Fatal("no-sizes spec accepted")
	}
	bad = IntrepidSpec(1)
	bad.WallFactorMin = 0.5
	if _, err := Generate(bad); err == nil {
		t.Fatal("walltime factor < 1 accepted")
	}
}

func TestScaleToUtilizationHitsTarget(t *testing.T) {
	for _, target := range []float64{0.25, 0.5, 0.75} {
		jobs, err := Generate(EurekaSpec(2))
		if err != nil {
			t.Fatal(err)
		}
		factor, err := ScaleToUtilization(jobs, 100, target)
		if err != nil {
			t.Fatal(err)
		}
		if factor <= 0 {
			t.Fatalf("factor = %g", factor)
		}
		got := OfferedLoad(jobs, 100)
		if math.Abs(got-target) > 0.02 {
			t.Fatalf("target %g: offered load %g", target, got)
		}
		if !sort.SliceIsSorted(jobs, func(a, b int) bool { return jobs[a].SubmitTime < jobs[b].SubmitTime }) {
			t.Fatal("scaling broke submit order")
		}
	}
}

func TestScaleToUtilizationPreservesShape(t *testing.T) {
	// Every interarrival gap must scale by the same factor.
	jobs, _ := Generate(EurekaSpec(3))
	orig := make([]sim.Time, len(jobs))
	for i, j := range jobs {
		orig[i] = j.SubmitTime
	}
	factor, err := ScaleToUtilization(jobs, 100, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(jobs); i++ {
		wantGap := float64(orig[i]-orig[i-1]) * factor
		gotGap := float64(jobs[i].SubmitTime - jobs[i-1].SubmitTime)
		if math.Abs(gotGap-wantGap) > 1.5 { // integer rounding tolerance
			t.Fatalf("gap %d: got %g, want %g", i, gotGap, wantGap)
		}
	}
}

func TestScaleToUtilizationRejectsBadInput(t *testing.T) {
	jobs, _ := Generate(EurekaSpec(4))
	if _, err := ScaleToUtilization(jobs, 100, 0); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := ScaleToUtilization(jobs, 100, 2.0); err == nil {
		t.Fatal("target > 1.5 accepted")
	}
	// Unsorted input must be rejected.
	jobs[0].SubmitTime, jobs[1].SubmitTime = jobs[1].SubmitTime+100, jobs[0].SubmitTime
	if _, err := ScaleToUtilization(jobs, 100, 0.5); err == nil {
		t.Fatal("unsorted trace accepted")
	}
}

func TestPairByWindow(t *testing.T) {
	mk := func(id job.ID, submit sim.Time) *job.Job { return job.New(id, 4, submit, 60, 60) }
	a := []*job.Job{mk(1, 0), mk(2, 1000), mk(3, 5000)}
	b := []*job.Job{mk(1, 50), mk(2, 4000), mk(3, 5100)}
	n := PairByWindow(a, b, "A", "B", 2*sim.Minute)
	if n != 2 {
		t.Fatalf("paired %d, want 2 (0↔50 and 5000↔5100)", n)
	}
	if !a[0].Paired() || !b[0].Paired() {
		t.Fatal("first pair not linked")
	}
	if a[1].Paired() {
		t.Fatal("job at t=1000 has no partner within 2 minutes")
	}
	if a[0].Mates[0].Domain != "B" || b[0].Mates[0].Domain != "A" {
		t.Fatalf("mate domains wrong: %+v / %+v", a[0].Mates, b[0].Mates)
	}
	if a[0].Mates[0].Job != 1 || b[0].Mates[0].Job != 1 {
		t.Fatal("mate IDs wrong")
	}
}

func TestPairByProportion(t *testing.T) {
	for _, p := range []float64{0, 0.025, 0.1, 0.33, 1.0} {
		a, _ := Generate(EurekaSpec(6))
		b, _ := Generate(EurekaSpec(7))
		rng := NewRNG(99)
		n, err := PairByProportion(rng, a, b, "A", "B", p)
		if err != nil {
			t.Fatal(err)
		}
		want := int(float64(len(a))*p + 0.5)
		if n != want {
			t.Fatalf("p=%g: paired %d, want %d", p, n, want)
		}
		got := PairedFraction(a)
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("p=%g: paired fraction %g", p, got)
		}
		// Every link must be reciprocal.
		bByID := map[job.ID]*job.Job{}
		for _, j := range b {
			bByID[j.ID] = j
		}
		for _, j := range a {
			if !j.Paired() {
				continue
			}
			mate := bByID[j.Mates[0].Job]
			if mate == nil || !mate.Paired() || mate.Mates[0].Job != j.ID {
				t.Fatalf("p=%g: non-reciprocal link for job %d", p, j.ID)
			}
		}
	}
}

func TestPairByProportionRejectsBadP(t *testing.T) {
	a, _ := Generate(EurekaSpec(8))
	b, _ := Generate(EurekaSpec(9))
	if _, err := PairByProportion(NewRNG(1), a, b, "A", "B", -0.1); err == nil {
		t.Fatal("negative proportion accepted")
	}
	if _, err := PairByProportion(NewRNG(1), a, b, "A", "B", 1.1); err == nil {
		t.Fatal("proportion > 1 accepted")
	}
}

func TestLinkGroupValidation(t *testing.T) {
	j1 := job.New(1, 1, 0, 10, 10)
	j2 := job.New(2, 1, 0, 10, 10)
	if err := LinkGroup([]*job.Job{j1, j2}, []string{"A"}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := LinkGroup([]*job.Job{j1, j2}, []string{"A", "A"}); err == nil {
		t.Fatal("duplicate domain accepted")
	}
	if err := LinkGroup([]*job.Job{j1, j2}, []string{"A", "B"}); err != nil {
		t.Fatal(err)
	}
	if len(j1.Mates) != 1 || j1.Mates[0].Domain != "B" {
		t.Fatalf("j1 mates = %+v", j1.Mates)
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := Generate(EurekaSpec(10))
	c := Clone(a)
	c[0].SubmitTime = 999999
	c[0].State = job.Running
	if a[0].SubmitTime == 999999 || a[0].State == job.Running {
		t.Fatal("clone shares state with original")
	}
}

// Property: OfferedLoad is invariant under Clone and scales ≈ inversely
// with the interarrival factor.
func TestOfferedLoadScalingProperty(t *testing.T) {
	f := func(seed uint16) bool {
		spec := EurekaSpec(uint64(seed) + 1)
		spec.Jobs = 200
		jobs, err := Generate(spec)
		if err != nil {
			return false
		}
		before := OfferedLoad(jobs, 100)
		if before <= 0 {
			return false
		}
		if _, err := ScaleToUtilization(jobs, 100, before/2); err != nil {
			return false
		}
		after := OfferedLoad(jobs, 100)
		return math.Abs(after-before/2) < 0.05*before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeStats(t *testing.T) {
	jobs, err := Generate(EurekaSpec(13))
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(jobs, 100)
	if st.Jobs != len(jobs) {
		t.Fatalf("jobs = %d", st.Jobs)
	}
	if st.Users < 2 {
		t.Fatalf("users = %d, want a population", st.Users)
	}
	if st.OfferedLoad <= 0 {
		t.Fatal("offered load not computed")
	}
	if st.Runtime.Mean <= 0 || st.Interarrival.Mean <= 0 {
		t.Fatalf("summaries empty: %+v", st)
	}
	// Walltime overestimates live in the spec's factor band (5-minute
	// rounding can push slightly past the max).
	if st.WallOverReq.Min < 1.0 || st.WallOverReq.Mean < 1.2 {
		t.Fatalf("overestimate summary = %+v", st.WallOverReq)
	}
	// Histogram covers every size class and sums to the job count.
	total := 0
	for _, b := range st.SizeHistogram {
		total += b.Count
	}
	if total != st.Jobs {
		t.Fatalf("histogram total %d != %d", total, st.Jobs)
	}
	out := st.Render("test", 100)
	for _, want := range []string{"offered load", "size histogram", "runtime:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	st := Analyze(nil, 100)
	if st.Jobs != 0 || st.OfferedLoad != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestUserRuntimeCorrelation(t *testing.T) {
	// The generator's per-user runtime locations must make a user's jobs
	// more alike than the population: the mean within-user log-runtime
	// spread is below the overall spread.
	jobs, err := Generate(EurekaSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	byUser := map[int][]float64{}
	var all []float64
	for _, j := range jobs {
		l := math.Log(float64(j.Runtime))
		byUser[j.User] = append(byUser[j.User], l)
		all = append(all, l)
	}
	variance := func(xs []float64) float64 {
		var m, s float64
		for _, x := range xs {
			m += x
		}
		m /= float64(len(xs))
		for _, x := range xs {
			s += (x - m) * (x - m)
		}
		return s / float64(len(xs))
	}
	overall := variance(all)
	var withinSum float64
	var n int
	for _, xs := range byUser {
		if len(xs) < 10 {
			continue
		}
		withinSum += variance(xs)
		n++
	}
	if n == 0 {
		t.Fatal("no user with enough jobs")
	}
	within := withinSum / float64(n)
	if within >= overall*0.8 {
		t.Fatalf("within-user runtime variance %.2f not below overall %.2f — prediction has nothing to learn", within, overall)
	}
}

func TestPairNearestRespectsGap(t *testing.T) {
	mk := func(id job.ID, submit sim.Time) *job.Job { return job.New(id, 1, submit, 60, 60) }
	a := []*job.Job{mk(1, 0), mk(2, 10000)}
	b := []*job.Job{mk(1, 50), mk(2, 99999)}
	n := PairNearest(NewRNG(1), a, b, "A", "B", 2, 120)
	if n != 1 {
		t.Fatalf("paired %d, want 1 (only the close pair)", n)
	}
	if !a[0].Paired() || a[1].Paired() {
		t.Fatal("wrong jobs paired")
	}
	if a[0].Mates[0].Job != 1 {
		t.Fatalf("paired with %d, want nearest", a[0].Mates[0].Job)
	}
}

func TestPairNearestPicksClosest(t *testing.T) {
	mk := func(id job.ID, submit sim.Time) *job.Job { return job.New(id, 1, submit, 60, 60) }
	a := []*job.Job{mk(1, 1000)}
	b := []*job.Job{mk(1, 0), mk(2, 990), mk(3, 1200)}
	if n := PairNearest(NewRNG(1), a, b, "A", "B", 1, sim.Hour); n != 1 {
		t.Fatalf("paired %d", n)
	}
	if a[0].Mates[0].Job != 2 {
		t.Fatalf("paired with %d, want 2 (closest at Δ10)", a[0].Mates[0].Job)
	}
}

func TestPairNearestSkipsAlreadyPaired(t *testing.T) {
	mk := func(id job.ID, submit sim.Time) *job.Job { return job.New(id, 1, submit, 60, 60) }
	a := []*job.Job{mk(1, 100), mk(2, 110)}
	b := []*job.Job{mk(1, 105)}
	if n := PairNearest(NewRNG(1), a, b, "A", "B", 5, sim.Hour); n != 1 {
		t.Fatalf("paired %d, want 1 (only one b-side candidate)", n)
	}
}

func TestDiurnalArrivals(t *testing.T) {
	spec := EurekaSpec(31)
	spec.Jobs = 20000
	spec.Span = 40 * sim.Day
	spec.DiurnalAmplitude = 0.8
	jobs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Count arrivals in the "day" half (06:00–18:00) vs the "night" half.
	day, night := 0, 0
	for _, j := range jobs {
		h := (j.SubmitTime % sim.Day) / sim.Hour
		if h >= 6 && h < 18 {
			day++
		} else {
			night++
		}
	}
	ratio := float64(day) / float64(night)
	if ratio < 1.5 {
		t.Fatalf("day/night arrival ratio %.2f, want clearly diurnal (>1.5)", ratio)
	}
	// Amplitude 0 must remain balanced.
	spec.DiurnalAmplitude = 0
	spec.Seed = 32
	flat, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	day, night = 0, 0
	for _, j := range flat {
		h := (j.SubmitTime % sim.Day) / sim.Hour
		if h >= 6 && h < 18 {
			day++
		} else {
			night++
		}
	}
	flatRatio := float64(day) / float64(night)
	if flatRatio < 0.9 || flatRatio > 1.1 {
		t.Fatalf("flat ratio %.2f, want ≈1", flatRatio)
	}
}

func TestDiurnalValidation(t *testing.T) {
	spec := EurekaSpec(1)
	spec.DiurnalAmplitude = 1.0
	if _, err := Generate(spec); err == nil {
		t.Fatal("amplitude 1.0 accepted")
	}
	spec.DiurnalAmplitude = -0.1
	if _, err := Generate(spec); err == nil {
		t.Fatal("negative amplitude accepted")
	}
}
